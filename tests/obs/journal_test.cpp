//===- tests/obs/journal_test.cpp -----------------------------------------===//
//
// Unit tests of the execution journal (DESIGN.md §4i): lock-free emission
// and canonical snapshot order, the binary file format's byte-identical
// round-trip and its rejection of truncated/garbage input, interned-string
// capture, path-tree reconstruction with rollups, the why/provenance
// resolver, the branch-trace-aligned diff, and the live /tree JSON body.
//
// The journal is process-global state; every test that enables it resets
// and disables it before returning so tests stay order-independent.
//
//===----------------------------------------------------------------------===//

#include "obs/journal/analysis.h"
#include "obs/journal/journal.h"
#include "obs/journal/journal_io.h"

#include "obs/exporters.h"
#include "support/interner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

using namespace gillian;
using namespace gillian::obs::journal;

namespace {

/// RAII: journal on at entry, reset + off at exit.
struct JournalScope {
  JournalScope() {
    reset();
    setEnabled(true);
  }
  ~JournalScope() {
    setEnabled(false);
    reset();
  }
};

/// A hand-made two-run journal: one root, one 2-way branch, terminated
/// leaves. String table: [0]="" [1]=proc [2]=action-name.
JournalData tinyJournal(uint8_t TrueLayer, bool TruePruned) {
  JournalData D;
  D.Strings = {"", "test_t", "setProp"};
  Event Root;
  Root.Kind = static_cast<uint8_t>(EventKind::Root);
  Root.Path = 1;
  Root.Proc = 1;
  D.Events.push_back(Root);

  auto Branch = [](uint64_t Path, uint32_t Step, uint32_t Cmd, uint8_t Side,
                   bool Taken, uint8_t Layer, uint64_t Wall, uint64_t Child) {
    Event E;
    E.Kind = static_cast<uint8_t>(EventKind::Branch);
    E.Path = Path;
    E.Step = Step;
    E.Proc = 1;
    E.Cmd = Cmd;
    E.A = Side;
    E.B = Taken ? 1 : 0;
    E.C = static_cast<uint8_t>(
        (static_cast<uint8_t>(Taken ? Verdict::Sat : Verdict::None) << 4) |
        Layer);
    E.X = Taken ? 1 : 0;
    E.WallNs = Wall;
    E.Aux = Child;
    return E;
  };
  bool Both = !TruePruned;
  D.Events.push_back(Branch(1, 3, 7, 0, true,
                            static_cast<uint8_t>(VerdictLayer::Native),
                            50000, Both ? 2 : 0));
  D.Events.push_back(
      Branch(1, 3, 7, 1, !TruePruned, TrueLayer, 90000, Both ? 3 : 0));

  Event Act;
  Act.Kind = static_cast<uint8_t>(EventKind::Action);
  Act.Path = Both ? 2 : 1;
  Act.Step = 5;
  Act.Proc = 1;
  Act.Cmd = 9;
  Act.X = 2; // "setProp"
  Act.A = 1;
  D.Events.push_back(Act);

  auto End = [](uint64_t Path, uint32_t Step, uint32_t Cmd, uint8_t Outcome) {
    Event E;
    E.Kind = static_cast<uint8_t>(EventKind::PathEnd);
    E.Path = Path;
    E.Step = Step;
    E.Proc = 1;
    E.Cmd = Cmd;
    E.A = Outcome;
    return E;
  };
  D.Events.push_back(End(Both ? 2 : 1, 8, 12,
                         static_cast<uint8_t>(PathOutcome::Return)));
  if (Both)
    D.Events.push_back(End(3, 6, 12,
                           static_cast<uint8_t>(PathOutcome::Error)));
  std::sort(D.Events.begin(), D.Events.end(), canonicalLess);
  return D;
}

//===----------------------------------------------------------------------===//
// Emission + snapshot
//===----------------------------------------------------------------------===//

TEST(JournalCoreTest, DisabledEmitIsDropped) {
  reset();
  setEnabled(false);
  uint64_t Before = eventsEmitted();
  emitRoot(allocPathIds(1), InternedString::get("p").id());
  EXPECT_EQ(eventsEmitted(), Before);
  EXPECT_TRUE(snapshot().empty());
}

TEST(JournalCoreTest, SnapshotIsLosslessAndCanonicallyOrdered) {
  JournalScope J;
  uint32_t Proc = InternedString::get("multi_thread_proc").id();
  constexpr int PerThread = 1000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I) {
        uint64_t Id = allocPathIds(1);
        emitBranch(Id, static_cast<uint32_t>(I), Proc,
                   static_cast<uint32_t>(T), 0, true, Verdict::Sat,
                   VerdictLayer::Syntactic, 1, 10, 0);
      }
    });
  for (std::thread &T : Ts)
    T.join();

  std::vector<Event> S = snapshot();
  ASSERT_EQ(S.size(), static_cast<size_t>(4 * PerThread));
  EXPECT_EQ(eventsEmitted(), S.size());
  EXPECT_TRUE(std::is_sorted(S.begin(), S.end(), canonicalLess));
  // Node ids are allocation-unique across threads.
  std::vector<uint64_t> Ids;
  for (const Event &E : S)
    Ids.push_back(E.Path);
  std::sort(Ids.begin(), Ids.end());
  EXPECT_EQ(std::adjacent_find(Ids.begin(), Ids.end()), Ids.end());
}

TEST(JournalCoreTest, ResetDropsEventsAndRestartsIds) {
  JournalScope J;
  emitRoot(allocPathIds(1), InternedString::get("p").id());
  ASSERT_FALSE(snapshot().empty());
  reset();
  EXPECT_TRUE(snapshot().empty());
  EXPECT_EQ(eventsEmitted(), 0u);
  EXPECT_EQ(allocPathIds(1), 1u); // id allocation restarted
}

TEST(JournalCoreTest, CaptureResolvesInternedStrings) {
  JournalScope J;
  uint32_t Proc = InternedString::get("capture_proc").id();
  uint32_t Act = InternedString::get("capture_action").id();
  uint64_t Id = allocPathIds(1);
  emitRoot(Id, Proc);
  emitAction(Id, 2, Proc, 5, Act, 1, 0, 0);
  JournalData D = capture();
  ASSERT_EQ(D.Events.size(), 2u);
  ASSERT_FALSE(D.Strings.empty());
  EXPECT_EQ(D.Strings[0], ""); // index 0 reserved
  EXPECT_EQ(D.str(D.Events[0].Proc), "capture_proc");
  const Event &A = D.Events[1];
  ASSERT_EQ(A.Kind, static_cast<uint8_t>(EventKind::Action));
  EXPECT_EQ(D.str(A.X), "capture_action");
}

TEST(JournalCoreTest, StatsJsonIsValid) {
  std::string S = statsJson();
  EXPECT_TRUE(obs::validateJson(S)) << S;
  EXPECT_NE(S.find("\"events\""), std::string::npos);
  EXPECT_NE(S.find("\"lossless\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// File format
//===----------------------------------------------------------------------===//

TEST(JournalIoTest, RoundTripIsByteIdentical) {
  JournalData D = tinyJournal(static_cast<uint8_t>(VerdictLayer::Z3),
                              /*TruePruned=*/false);
  std::string Bytes = serializeJournal(D);
  JournalData Back;
  std::string Err;
  ASSERT_TRUE(parseJournal(Bytes, Back, Err)) << Err;
  EXPECT_EQ(Back.Strings, D.Strings);
  ASSERT_EQ(Back.Events.size(), D.Events.size());
  EXPECT_EQ(serializeJournal(Back), Bytes);
}

TEST(JournalIoTest, RejectsTruncationAtEveryPrefix) {
  JournalData D = tinyJournal(static_cast<uint8_t>(VerdictLayer::Z3), false);
  std::string Bytes = serializeJournal(D);
  // Every proper prefix must be rejected — the end frame guards the tail.
  for (size_t Cut : {size_t(0), size_t(2), Bytes.size() / 2,
                     Bytes.size() - 1}) {
    JournalData Back;
    std::string Err;
    EXPECT_FALSE(parseJournal(std::string_view(Bytes).substr(0, Cut), Back,
                              Err))
        << "cut at " << Cut;
    EXPECT_FALSE(Err.empty());
  }
}

TEST(JournalIoTest, RejectsGarbageAndBadFields) {
  JournalData Back;
  std::string Err;
  EXPECT_FALSE(parseJournal("not a journal at all", Back, Err));
  EXPECT_FALSE(parseJournal(std::string("GJL1") + std::string(64, '\xff'),
                            Back, Err));
  // Corrupt one byte of a valid stream: the event-kind byte of the first
  // event (kinds above PathEnd are invalid).
  JournalData D = tinyJournal(static_cast<uint8_t>(VerdictLayer::Z3), false);
  std::string Bytes = serializeJournal(D);
  size_t Tail = Bytes.find("GJND");
  ASSERT_NE(Tail, std::string::npos);
  for (size_t I = 4; I < Bytes.size(); ++I) {
    if (static_cast<uint8_t>(Bytes[I]) ==
        static_cast<uint8_t>(EventKind::Root)) {
      std::string Bad = Bytes;
      Bad[I] = 0x7f;
      JournalData B2;
      std::string E2;
      // Either rejected outright or parsed differently — never accepted
      // as the same journal (the kind byte is load-bearing).
      if (parseJournal(Bad, B2, E2))
        EXPECT_NE(serializeJournal(B2), Bytes);
      break;
    }
  }
}

TEST(JournalIoTest, FileWriteReadRoundTrip) {
  JournalData D = tinyJournal(static_cast<uint8_t>(VerdictLayer::Native),
                              /*TruePruned=*/true);
  std::string Path = ::testing::TempDir() + "journal_test_rt.gjl";
  uint64_t Bytes = 0;
  std::string Err;
  ASSERT_TRUE(writeJournalFile(D, Path, &Bytes, &Err)) << Err;
  EXPECT_GT(Bytes, 0u);
  JournalData Back;
  ASSERT_TRUE(readJournalFile(Path, Back, Err)) << Err;
  EXPECT_EQ(serializeJournal(Back), serializeJournal(D));
  ::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Analysis: tree, why, diff, signature
//===----------------------------------------------------------------------===//

TEST(JournalAnalysisTest, BuildsForestWithRollups) {
  JournalData D = tinyJournal(static_cast<uint8_t>(VerdictLayer::Z3),
                              /*TruePruned=*/false);
  PathForest F = buildForest(D);
  ASSERT_EQ(F.Roots.size(), 1u);
  EXPECT_EQ(F.RootLabels[0], "test_t#0");
  const TreeNode &Root = F.Nodes.at(F.Roots[0]);
  ASSERT_EQ(Root.Children.size(), 2u);
  EXPECT_EQ(Root.SubtreePaths, 2u);
  EXPECT_EQ(Root.SubtreeWallNs, 140000u); // both decision sides
  EXPECT_EQ(Root.SubtreePrunes, 0u);

  // Pruned variant: one child, one path, one prune.
  JournalData P = tinyJournal(static_cast<uint8_t>(VerdictLayer::None),
                              /*TruePruned=*/true);
  PathForest FP = buildForest(P);
  const TreeNode &RP = FP.Nodes.at(FP.Roots[0]);
  EXPECT_TRUE(RP.Children.empty()); // single output keeps the node id
  EXPECT_EQ(RP.SubtreePaths, 1u);
  EXPECT_EQ(RP.SubtreePrunes, 1u);
}

TEST(JournalAnalysisTest, TreeOutputsAreWellFormed) {
  JournalData D = tinyJournal(static_cast<uint8_t>(VerdictLayer::Z3), false);
  std::string Text = treeText(D, 4);
  EXPECT_NE(Text.find("test_t#0"), std::string::npos);
  EXPECT_NE(Text.find("native"), std::string::npos);
  std::string Json = treeJson(D, 4);
  EXPECT_TRUE(obs::validateJson(Json)) << Json;
  EXPECT_NE(Json.find("\"roots\""), std::string::npos);
  // Depth collapse: at depth 0 the JSON stays valid and marks collapse.
  std::string Shallow = treeJson(D, 0);
  EXPECT_TRUE(obs::validateJson(Shallow)) << Shallow;
}

TEST(JournalAnalysisTest, LiveTreeJsonReportsDisabled) {
  reset();
  setEnabled(false);
  std::string S = liveTreeJson(4);
  EXPECT_TRUE(obs::validateJson(S)) << S;
  EXPECT_NE(S.find("\"enabled\":false"), std::string::npos);
}

TEST(JournalAnalysisTest, WhyResolvesNodeIdAndBranchTrace) {
  JournalData D = tinyJournal(static_cast<uint8_t>(VerdictLayer::Z3), false);
  std::string Out;
  ASSERT_TRUE(whyText(D, "test_t#0:1", Out)) << Out;
  EXPECT_NE(Out.find("z3"), std::string::npos); // deciding layer surfaced
  std::string ById;
  ASSERT_TRUE(whyText(D, "3", ById)) << ById;
  EXPECT_EQ(Out, ById); // trace and id name the same node
  std::string Err;
  EXPECT_FALSE(whyText(D, "test_t#0:9.9", Err));
  EXPECT_FALSE(whyText(D, "no_such_proc", Err));
}

TEST(JournalAnalysisTest, DiffReportsLayerShiftPruneAndWallDelta) {
  JournalData A = tinyJournal(static_cast<uint8_t>(VerdictLayer::Native),
                              /*TruePruned=*/false);
  JournalData B = tinyJournal(static_cast<uint8_t>(VerdictLayer::Z3),
                              /*TruePruned=*/false);
  std::string Text = diffText(A, B, 8);
  EXPECT_NE(Text.find("native"), std::string::npos);
  EXPECT_NE(Text.find("z3"), std::string::npos);
  std::string Json = diffJson(A, B, 8);
  EXPECT_TRUE(obs::validateJson(Json)) << Json;

  // A prune divergence: same site, different surviving side set.
  JournalData C = tinyJournal(static_cast<uint8_t>(VerdictLayer::None),
                              /*TruePruned=*/true);
  std::string PruneDiff = diffText(A, C, 8);
  EXPECT_NE(PruneDiff.find("only in A"), std::string::npos);
  // Identical journals diff clean.
  std::string Same = diffText(A, A, 8);
  EXPECT_NE(Same.find("only in A: 0"), std::string::npos) << Same;
  EXPECT_NE(Same.find("diverging prunes: 0"), std::string::npos) << Same;
}

TEST(JournalAnalysisTest, SignatureIgnoresLayerWallAndSpawns) {
  JournalData A = tinyJournal(static_cast<uint8_t>(VerdictLayer::Native),
                              /*TruePruned=*/false);
  JournalData B = tinyJournal(static_cast<uint8_t>(VerdictLayer::Z3),
                              /*TruePruned=*/false);
  // Different deciding layers and wall times: same structure, same
  // signature (the invariance test's alignment key).
  for (Event &E : B.Events)
    E.WallNs *= 3;
  EXPECT_EQ(canonicalTreeSignature(A), canonicalTreeSignature(B));
  // Spawn events are schedule-dependent and excluded.
  Event Sp;
  Sp.Kind = static_cast<uint8_t>(EventKind::Spawn);
  Sp.Path = 2;
  Sp.Step = 4;
  Sp.Proc = 1;
  Sp.Aux = 999;
  B.Events.push_back(Sp);
  std::sort(B.Events.begin(), B.Events.end(), canonicalLess);
  EXPECT_EQ(canonicalTreeSignature(A), canonicalTreeSignature(B));
  // A pruned-vs-taken difference is structural and must show.
  JournalData C = tinyJournal(static_cast<uint8_t>(VerdictLayer::None),
                              /*TruePruned=*/true);
  EXPECT_NE(canonicalTreeSignature(A), canonicalTreeSignature(C));
}

} // namespace
