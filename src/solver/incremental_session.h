//===- solver/incremental_session.h - Scoped Z3 push/pop ------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layer 2 of the solver stack: incremental Z3 sessions that amortise
/// encode+assert work across the path-growth query shape. Path conditions
/// grow monotonically along a symbolic path — each branch appends
/// conjuncts to the prefix it forked from — so successive solver queries
/// of one exploration worker usually share a long canonical prefix. A
/// session owns one scoped Z3 solver and tracks the currently-asserted
/// prefix as a stack of *frames* (one push scope per query delta):
///
///  - a query extending the asserted prefix pushes only its delta
///    conjuncts (one new scope) and re-checks;
///  - on divergence the frames that no longer belong to the query are
///    popped, and when the surviving share drops below a threshold the
///    session resets entirely (fresh solver, shedding learnt clauses from
///    abandoned branches);
///  - encoding reuse is independent of scope reuse: a per-session
///    Z3EncodingMemo hash-conses GIL→Z3 translation per (expression
///    identity, TypeEnv fingerprint), so re-encoding unchanged conjuncts
///    after a reset is a table lookup.
///
/// Soundness is verdict-identity with the cold path (z3_backend):
///  - every asserted conjunct is a conjunct of the current query, so
///    Unsat remains sound;
///  - each frame records the *type assumptions* (per-variable
///    `optional<GilType>`, nullopt = unconstrained-defaulting) its
///    conjuncts were encoded under; a frame is only reused when the new
///    query's TypeEnv agrees exactly, since sorts — and droppability —
///    depend on them;
///  - frames record whether any of their conjuncts was dropped
///    (unencodable); Sat is downgraded to Unknown whenever a live frame
///    dropped something, per-frame, exactly as the cold path downgrades
///    per-query. Verdicts are never cached here — caching stays in layer 1.
///
/// Sessions are thread-confined (Z3 contexts are not thread-safe, and all
/// handles of a thread's sessions belong to that thread's shared context).
/// IncrementalSessionPool keeps a small pool of sessions per thread —
/// an approximate prefix *trie*: divergent paths claim their own session
/// instead of thrashing one hot prefix — and is keyed off the exploration
/// scheduler's threads via thread-local storage. Cross-thread invalidation
/// (Solver::resetCache, bench cold starts) bumps a generation counter;
/// each pool lazily drops its sessions on next use from its own thread,
/// because Z3 handles must be destructed by the thread that owns them.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_INCREMENTAL_SESSION_H
#define GILLIAN_SOLVER_INCREMENTAL_SESSION_H

#include "solver/path_condition.h"
#include "solver/syntactic.h"
#include "solver/type_infer.h"

#include <memory>
#include <vector>

namespace gillian {

struct SolverStats;

/// One scoped Z3 solver tracking an asserted path-condition prefix as a
/// stack of frames. Thread-confined: construct, query, and destroy on one
/// thread (handles live in that thread's shared Z3 context). Without the
/// Z3 backend every query answers Unknown.
class IncrementalSession {
public:
  IncrementalSession();
  ~IncrementalSession();
  IncrementalSession(const IncrementalSession &) = delete;
  IncrementalSession &operator=(const IncrementalSession &) = delete;

  /// How many of \p PC's conjuncts the longest reusable frame prefix
  /// already asserts under \p Types (0 when nothing is reusable). Pure
  /// inspection — used by the pool to route queries.
  size_t reusableConjuncts(const PathCondition &PC,
                           const TypeEnv &Types) const;

  /// Checks \p PC under \p Types, reusing the asserted prefix: pops
  /// diverging frames, resets entirely when the retained share falls
  /// below \p ResetThreshold (fraction of \p PC's conjuncts), then pushes
  /// the delta as one new frame and re-checks. Counters accumulate into
  /// \p Stats. Verdict-identical to the cold checkSatZ3 path.
  SatResult checkSat(const PathCondition &PC, const TypeEnv &Types,
                     double ResetThreshold, SolverStats &Stats);

  /// Pops every frame and starts from a fresh solver (the encoding memo
  /// survives — it is keyed on environment fingerprints, not on solver
  /// state).
  void reset();

  size_t depth() const;             ///< live frames (push scopes)
  size_t assertedConjuncts() const; ///< conjuncts covered by live frames
  size_t encodeMemoSize() const;    ///< entries in the encoding memo

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// A small per-thread pool of incremental sessions — an approximate prefix
/// trie: a query is routed to the session sharing the most conjuncts, and
/// a query sharing nothing claims a fresh session (up to MaxSessions)
/// before evicting the least-recently-used one. Obtain via forThread();
/// never share an instance across threads.
class IncrementalSessionPool {
public:
  /// Sessions a thread keeps alive at once. Small: each holds a Z3 solver,
  /// and the exploration scheduler's LIFO pop order means few distinct hot
  /// prefixes exist per worker at a time (typically the current path plus
  /// the independence slices of its queries).
  static constexpr size_t MaxSessions = 4;

  /// The calling thread's pool (created on first use, destroyed at thread
  /// exit after the thread's shared Z3 context users).
  static IncrementalSessionPool &forThread();

  /// Invalidates every thread's sessions: bumps a global generation; each
  /// pool drops its sessions on next use from its own thread (Z3 handles
  /// must be destructed by their owning thread, so the drop is lazy).
  static void invalidateAll();

  /// Routes \p PC to the best-sharing session (see class comment) and
  /// checks it there.
  SatResult checkSat(const PathCondition &PC, const TypeEnv &Types,
                     double ResetThreshold, SolverStats &Stats);

  /// Live sessions (after applying any pending invalidation).
  size_t sessions();

  /// Drops this pool's sessions immediately (owning thread only).
  void reset();

private:
  void maybeGenerationReset();

  std::vector<std::unique_ptr<IncrementalSession>> Pool; ///< LRU→MRU order
  uint64_t LocalGen = 0;
};

} // namespace gillian

#endif // GILLIAN_SOLVER_INCREMENTAL_SESSION_H
