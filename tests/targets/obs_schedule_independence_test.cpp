//===- tests/targets/obs_schedule_independence_test.cpp -------------------===//
//
// Schedule-independence of the observability counters: exploring the same
// evaluation suite at workers ∈ {1, 2, 8} yields identical ExecStats
// counter totals (modulo cache-hit attribution and wall times, which are
// schedule-dependent by construction) and identical per-language action
// counter totals — on an MJS (Buckets) suite and an MC (Collections)
// suite.
//
// Also the budget-cut regression: Interpreter::run used to push Bound
// results into the result vector directly while bumping PathsBounded
// inline, bypassing finish(); the parallel scheduler always routed cuts
// through finish(). On a deterministically-cut single-path program the
// stats of workers 1 and 4 must now be identical.
//
//===----------------------------------------------------------------------===//

#include "targets/buckets_mjs.h"
#include "targets/collections_mc.h"

#include "engine/test_runner.h"
#include "mc/compiler.h"
#include "mc/memory.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "obs/action_counters.h"
#include "obs/exporters.h"
#include "obs/trace_ring.h"
#include "targets/suite_runner.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace gillian;
using namespace gillian::targets;

namespace {

/// The ExecStats counters whose totals depend only on the explored paths.
/// Excluded: solver_cache_hits / solver_inc_reuses (two workers can miss
/// the same entry concurrently where one worker would hit) and the
/// solver_ns / engine_ns wall times.
std::map<std::string, uint64_t> deterministicCounters(const ExecStats &S) {
  return {{"cmds_executed", S.CmdsExecuted.load()},
          {"branches", S.Branches.load()},
          {"paths_finished", S.PathsFinished.load()},
          {"paths_vanished", S.PathsVanished.load()},
          {"paths_errored", S.PathsErrored.load()},
          {"paths_bounded", S.PathsBounded.load()},
          {"action_calls", S.ActionCalls.load()},
          {"proc_calls", S.ProcCalls.load()}};
}

using ActionSnapshot = std::map<std::string, std::map<std::string, uint64_t>>;

/// Per-(language, action) counts added between two global snapshots.
ActionSnapshot actionDelta(const ActionSnapshot &Before,
                           const ActionSnapshot &After) {
  ActionSnapshot D;
  for (const auto &[Lang, Actions] : After)
    for (const auto &[Act, N] : Actions) {
      uint64_t Prev = 0;
      auto LangIt = Before.find(Lang);
      if (LangIt != Before.end()) {
        auto ActIt = LangIt->second.find(Act);
        if (ActIt != LangIt->second.end())
          Prev = ActIt->second;
      }
      if (N != Prev)
        D[Lang][Act] = N - Prev;
    }
  return D;
}

struct SuiteCounters {
  std::map<std::string, uint64_t> Exec;
  ActionSnapshot Actions;
};

/// Explores every `test_*` procedure of \p P at the given worker count and
/// returns the deterministic ExecStats totals plus the action-counter
/// totals the run added.
template <typename M>
SuiteCounters suiteCounters(const Prog &P, uint32_t Workers) {
  EngineOptions Opts;
  Opts.Scheduler.Workers = Workers;
  Solver Slv(Opts.Solver); // private cache: runs are independent
  ExecStats Stats;
  using St = SymbolicState<M>;
  ActionSnapshot Before = obs::ActionCounters::instance().snapshot();
  for (const std::string &T : testProcs(P)) {
    St Init(M(), &Slv, &Opts);
    Interpreter<St> Interp(P, Opts, Stats);
    Result<std::vector<TraceResult<St>>> Traces = runExploration(
        Interp, InternedString::get(T), Expr::list({}), std::move(Init));
    EXPECT_TRUE(Traces.ok()) << T << ": "
                             << (Traces.ok() ? "" : Traces.error());
  }
  ActionSnapshot After = obs::ActionCounters::instance().snapshot();
  return {deterministicCounters(Stats), actionDelta(Before, After)};
}

template <typename M>
void expectCountersScheduleIndependent(const Prog &P,
                                       std::string_view Name) {
  SuiteCounters Seq = suiteCounters<M>(P, 1);
  EXPECT_GT(Seq.Exec.at("cmds_executed"), 0u) << Name;
  EXPECT_FALSE(Seq.Actions.empty()) << Name;
  for (uint32_t Workers : {2u, 8u}) {
    SuiteCounters Par = suiteCounters<M>(P, Workers);
    EXPECT_EQ(Seq.Exec, Par.Exec) << Name << " at workers=" << Workers;
    EXPECT_EQ(Seq.Actions, Par.Actions)
        << Name << " at workers=" << Workers;
  }
}

} // namespace

TEST(ObsScheduleIndependence, MjsSuiteCounterTotalsAreWorkerInvariant) {
  // "bag" exercises branches, actions and all solver layers (including
  // incremental Z3 sessions) while staying fast enough to run thrice.
  for (const BucketsSuite &S : bucketsSuites()) {
    if (std::string_view(S.Name) != "bag")
      continue;
    std::string Src =
        std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
    Result<Prog> P = mjs::compileMjsSource(Src);
    ASSERT_TRUE(P.ok()) << P.error();
    expectCountersScheduleIndependent<mjs::MjsSMem>(*P, S.Name);
    return;
  }
  FAIL() << "bag suite not found";
}

TEST(ObsScheduleIndependence, FlightRecorderSurvivesParallelExploration) {
  // Eight workers record branch/steal/span events into their lock-free
  // rings concurrently; the drain at quiescence must yield a consistent,
  // exporter-ready event stream. (This is the TSan coverage of the trace
  // ring.)
  for (const BucketsSuite &S : bucketsSuites()) {
    if (std::string_view(S.Name) != "bag")
      continue;
    std::string Src =
        std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
    Result<Prog> P = mjs::compileMjsSource(Src);
    ASSERT_TRUE(P.ok()) << P.error();
    obs::TraceRecorder &R = obs::TraceRecorder::instance();
    R.reset();
    R.enable();
    suiteCounters<mjs::MjsSMem>(*P, 8);
    std::vector<obs::TraceEvent> Events = R.drain();
    R.disable();
    EXPECT_FALSE(Events.empty());
    for (size_t I = 1; I < Events.size(); ++I)
      EXPECT_LE(Events[I - 1].TsNs, Events[I].TsNs);
    EXPECT_TRUE(obs::validateJson(obs::chromeTraceJson(Events)));
    return;
  }
  FAIL() << "bag suite not found";
}

TEST(ObsScheduleIndependence, McSuiteCounterTotalsAreWorkerInvariant) {
  const CollectionsSuite &S = collectionsSuites().front();
  std::string Src = std::string(collectionsLibrary()) + "\n" +
                    std::string(S.Source);
  Result<Prog> P = mc::compileMcSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectCountersScheduleIndependent<mc::McSMem>(*P, S.Name);
}

TEST(ObsScheduleIndependence, BudgetCutStatsMatchAcrossWorkerCounts) {
  // A single concrete path much longer than the budget: no branching, so
  // the cut point is deterministic at every worker count, and the one
  // path must be accounted as Bound — through finish() — identically by
  // the sequential worklist (workers=1) and the scheduler (workers=4).
  Result<Prog> P = whilelang::compileWhileSource(R"(
    function main() {
      i := 0;
      while (i < 100000) { i := i + 1; }
      return i;
    })");
  ASSERT_TRUE(P.ok()) << P.error();

  auto boundedStats = [&](uint32_t Workers) {
    EngineOptions Opts;
    Opts.MaxSteps = 100;
    Opts.Scheduler.Workers = Workers;
    Solver Slv(Opts.Solver);
    ExecStats Stats;
    using St = SymbolicState<whilelang::WhileSMem>;
    St Init(whilelang::WhileSMem(), &Slv, &Opts);
    Interpreter<St> Interp(*P, Opts, Stats);
    Result<std::vector<TraceResult<St>>> Traces =
        runExploration(Interp, InternedString::get("main"),
                       Expr::list({}), std::move(Init));
    EXPECT_TRUE(Traces.ok()) << (Traces.ok() ? "" : Traces.error());
    if (Traces.ok()) {
      EXPECT_EQ(Traces->size(), 1u);
      if (Traces->size() == 1) {
        EXPECT_EQ((*Traces)[0].Kind, OutcomeKind::Bound);
      }
    }
    return deterministicCounters(Stats);
  };

  std::map<std::string, uint64_t> Seq = boundedStats(1);
  std::map<std::string, uint64_t> Par = boundedStats(4);
  EXPECT_EQ(Seq.at("paths_bounded"), 1u);
  EXPECT_EQ(Seq.at("paths_finished"), 0u);
  EXPECT_EQ(Seq, Par);
}
