//===- examples/c_bug_hunt.cpp --------------------------------------------===//
//
// Gillian-C in action (§4.2): runs a hand-written symbolic test against a
// C-like program with several latent undefined behaviours and prints the
// memory-model-detected faults with their counter-models — buffer
// overflow, use-after-free and uninitialised reads, the §4.2 bug classes.
//
// Build & run:  ./build/examples/c_bug_hunt
//
//===----------------------------------------------------------------------===//

#include "engine/test_runner.h"
#include "mc/compiler.h"
#include "mc/memory.h"

#include <cstdio>

using namespace gillian;
using namespace gillian::mc;

int main() {
  // A "string builder" with three latent UB bugs, exposed by one symbolic
  // test: an off-by-one capacity check, a use-after-free on the shrink
  // path, and an uninitialised read when snapshotting an empty builder.
  const char *Source = R"(
    struct Builder { data: ptr<i8>; len: i64; cap: i64; }

    fn sb_new(cap: i64) -> ptr<Builder> {
      var b: ptr<Builder> = alloc(Builder, 1);
      b->data = alloc(i8, cap);
      b->len = 0;
      b->cap = cap;
      return b;
    }
    fn sb_append(b: ptr<Builder>, c: i64) -> i64 {
      if (b->len > b->cap) { return 0; }       // BUG: should be >=
      b->data[b->len] = i8(c);
      b->len = b->len + 1;
      return 1;
    }
    fn sb_shrink(b: ptr<Builder>) -> i64 {
      var nd: ptr<i8> = alloc(i8, b->len + 1);
      memcpy(nd, b->data, b->len);
      free(b->data);
      var last: i64 = b->data[0];              // BUG: use after free
      b->data = nd;
      b->cap = b->len + 1;
      return last;
    }
    fn sb_first(b: ptr<Builder>) -> i64 {
      return b->data[0];                       // BUG when len == 0
    }

    fn main() -> i64 {
      var n: i64 = symb_i64();
      assume(0 <= n && n <= 2);
      var b: ptr<Builder> = sb_new(2);
      for (var i: i64 = 0; i < n; i = i + 1) { sb_append(b, 65 + i); }
      if (n == 2) { sb_append(b, 90); }        // hits the off-by-one
      if (n == 1) { sb_shrink(b); }            // hits the UAF
      if (n == 0) { return sb_first(b); }      // hits the uninit read
      return b->len;
    }
  )";

  Result<Prog> Compiled = compileMcSource(Source);
  if (!Compiled) {
    std::fprintf(stderr, "compile error: %s\n", Compiled.error().c_str());
    return 1;
  }

  EngineOptions Opts;
  Solver Slv(Opts.Solver);
  SymbolicTestResult R =
      runSymbolicTest<McSMem>(*Compiled, "main", Opts, Slv);

  std::printf("one symbolic test, %llu GIL commands, %llu bug reports:\n",
              static_cast<unsigned long long>(R.Stats.CmdsExecuted),
              static_cast<unsigned long long>(R.Bugs.size()));
  for (const BugReport &B : R.Bugs) {
    std::printf("  %s%s\n", B.Message.c_str(),
                B.Confirmed ? "  [counter-model verified]" : "");
    if (B.Confirmed)
      std::printf("    model: %s\n", B.CounterModel.c_str());
  }
  std::printf("\nhealthy paths that still returned: %llu\n",
              static_cast<unsigned long long>(R.PathsReturned));
  return R.Bugs.empty() ? 1 : 0; // bugs are the expected outcome here
}
