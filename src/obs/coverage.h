//===- obs/coverage.h - Target-program branch coverage ---------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch coverage of the *target program* under symbolic execution —
/// which conditional outcomes the exploration actually reached. A bounded
/// symbolic run that reports "no bugs" is only as strong as its coverage;
/// this module lifts the engine's existing branch observations (the same
/// sites that feed the BranchTaken flight-recorder events) into
/// per-procedure covered/total counters reported in the bench JSON and on
/// /metrics.
///
/// A *site* is one IfGoto command: (procedure, command index). Each site
/// has two outcomes — the false branch (fallthrough) and the true branch
/// (jump) — recorded as a 2-bit mask; an outcome counts as covered when
/// some explored path took it feasibly. Totals are static: the
/// interpreter registers every procedure's IfGoto count up front, so
/// never-executed branches show up as uncovered instead of disappearing.
///
/// recordBranch() is a shard-mutex acquisition plus a bitwise OR, gated
/// behind ObsConfig::coverage(); an IfGoto typically evaluates its
/// condition against the path condition (a solver query), so the
/// bookkeeping is noise.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_COVERAGE_H
#define GILLIAN_OBS_COVERAGE_H

#include "obs/json_writer.h"
#include "obs/obs_config.h"
#include "support/interner.h"

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gillian::obs {

/// Outcome bits of one IfGoto site.
inline constexpr uint8_t BranchFalseBit = 1; ///< fallthrough side taken
inline constexpr uint8_t BranchTrueBit = 2;  ///< jump side taken

class BranchCoverage {
public:
  static BranchCoverage &instance();

  /// Declares that procedure \p ProcId contains \p BranchSites IfGoto
  /// commands. Idempotent (the count is a property of the compiled
  /// program); re-registration with a different count keeps the larger
  /// one, so recompiled same-named programs never shrink totals mid-run.
  void registerProc(uint32_t ProcId, uint32_t BranchSites);

  /// Records that the site (\p ProcId, \p CmdIdx) produced the outcomes
  /// in \p Bits (BranchFalseBit / BranchTrueBit) on some path. No-op when
  /// ObsConfig::coverage() is off or Bits is 0.
  static void recordBranch(uint32_t ProcId, uint32_t CmdIdx, uint8_t Bits) {
    if (Bits == 0 || !ObsConfig::coverage())
      return;
    instance().recordImpl(ProcId, CmdIdx, Bits);
  }

  /// Outcome bits recorded so far at site (\p ProcId, \p CmdIdx): 0,
  /// BranchFalseBit, BranchTrueBit, or their union. One shard-mutex
  /// acquisition and a hash lookup — cheap enough for the coverage-guided
  /// selection strategy to score every spawned configuration with it.
  uint8_t coveredBits(uint32_t ProcId, uint32_t CmdIdx) const;

  /// True when some outcome of the site is still uncovered (including
  /// sites never recorded at all).
  bool hasUncoveredOutcome(uint32_t ProcId, uint32_t CmdIdx) const {
    return coveredBits(ProcId, CmdIdx) != (BranchFalseBit | BranchTrueBit);
  }

  /// One procedure's coverage snapshot.
  struct ProcCoverage {
    std::string Proc;
    uint32_t Sites = 0;           ///< registered IfGoto sites
    uint32_t SitesExecuted = 0;   ///< sites with >= 1 covered outcome
    uint32_t OutcomesCovered = 0; ///< covered (site, direction) pairs
    uint32_t outcomesTotal() const { return 2 * Sites; }
  };

  /// Per-procedure snapshot, sorted by procedure name; procedures with no
  /// registered sites and no recorded outcome are omitted.
  std::vector<ProcCoverage> snapshot() const;

  /// Summed covered / total outcomes over every registered procedure.
  void totals(uint64_t &Covered, uint64_t &Total) const;

  /// `{"procs":[{"proc":...,"branch_sites":...,"sites_executed":...,
  /// "outcomes_covered":...,"outcomes_total":...},...],
  /// "outcomes_covered":N,"outcomes_total":M}`.
  void jsonInto(JsonWriter &W) const;
  std::string json() const;

  void reset();

private:
  struct ProcCell {
    uint32_t Sites = 0; ///< registered total (0 until registerProc)
    std::unordered_map<uint32_t, uint8_t> Mask; ///< cmd idx -> outcome bits
  };
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<uint32_t, ProcCell> Procs; ///< by InternedString id
  };

  void recordImpl(uint32_t ProcId, uint32_t CmdIdx, uint8_t Bits);
  Shard &shardFor(uint32_t ProcId) {
    return Shards[(static_cast<uint64_t>(ProcId) * 0x9E3779B97F4A7C15ull) >>
                  60];
  }
  const Shard &shardFor(uint32_t ProcId) const {
    return const_cast<BranchCoverage *>(this)->shardFor(ProcId);
  }

  static constexpr size_t NumShards = 16;
  std::array<Shard, NumShards> Shards;
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_COVERAGE_H
