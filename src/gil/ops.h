//===- gil/ops.h - GIL unary/binary operators ------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GIL operator set (the ⊖ and ⊕ of the §2.1 expression grammar) and
/// its concrete semantics. The same evaluation functions are reused by the
/// symbolic simplifier for constant folding, which keeps the concrete and
/// symbolic semantics of operators identical by construction.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_GIL_OPS_H
#define GILLIAN_GIL_OPS_H

#include "gil/value.h"
#include "support/result.h"

#include <string_view>

namespace gillian {

enum class UnOpKind : uint8_t {
  Neg,      ///< arithmetic negation (Int -> Int, Num -> Num)
  Not,      ///< boolean negation
  BitNot,   ///< bitwise complement (Int)
  TypeOf,   ///< dynamic type (any -> Type)
  ListLen,  ///< list length (List -> Int)
  StrLen,   ///< string length (Str -> Int)
  Head,     ///< first element of a non-empty list
  Tail,     ///< all but the first element of a non-empty list
  ToNum,    ///< Int -> Num widening (identity on Num)
  ToInt,    ///< Num -> Int truncation (identity on Int)
  NumToStr, ///< numeric -> decimal string
  StrToNum, ///< decimal string -> Num (error on malformed input)
};

enum class BinOpKind : uint8_t {
  Add,       ///< Int+Int -> Int, otherwise numeric -> Num
  Sub,
  Mul,
  Div,       ///< Int/Int truncating; numeric otherwise; error on 0 (Int)
  Mod,       ///< Int only; error on 0
  Eq,        ///< structural equality on any values -> Bool
  Lt,        ///< numeric or string (lexicographic) -> Bool
  Le,
  And,       ///< boolean
  Or,        ///< boolean
  StrCat,    ///< string concatenation
  StrNth,    ///< 1-character substring at Int index (error when OOB)
  ListNth,   ///< list element at Int index (error when OOB)
  ListConcat,///< list ++ list
  Cons,      ///< element :: list
  BitAnd,    ///< Int
  BitOr,     ///< Int
  BitXor,    ///< Int
  Shl,       ///< Int (shift in [0,63], error otherwise)
  Shr,       ///< Int arithmetic shift (shift in [0,63], error otherwise)
};

/// Spelling used by the textual GIL printer/parser ("-", "!", "typeof",...).
std::string_view unOpSpelling(UnOpKind Op);
/// Spelling used by the textual GIL printer/parser ("+", "==", "::", ...).
std::string_view binOpSpelling(BinOpKind Op);

/// Concrete semantics of a unary operator; errors describe GIL runtime
/// type errors (which the interpreter turns into E(msg) outcomes).
Result<Value> evalUnOp(UnOpKind Op, const Value &V);

/// Concrete semantics of a binary operator.
Result<Value> evalBinOp(BinOpKind Op, const Value &A, const Value &B);

/// True for operators whose result is always Bool.
bool isBooleanResult(BinOpKind Op);

/// True for Add/Sub/Mul/Div on which algebraic identities apply.
bool isArithmetic(BinOpKind Op);

} // namespace gillian

#endif // GILLIAN_GIL_OPS_H
