//===- solver/native/clause_store.cpp -------------------------------------===//

#include "solver/native/clause_store.h"

#include <algorithm>
#include <cmath>

using namespace gillian::native;

BVar ClauseStore::newVar() {
  BVar V = static_cast<BVar>(Assign.size());
  Assign.push_back(LBool::Undef);
  Activity.push_back(0.0);
  Phase.push_back(1); // default phase: positive (atoms are mostly asserted)
  Watches.emplace_back();
  Watches.emplace_back();
  return V;
}

bool ClauseStore::enqueue(Lit L) {
  LBool V = valueLit(L);
  if (V == LBool::True)
    return true;
  if (V == LBool::False)
    return false;
  Assign[litVar(L)] = litSign(L) ? LBool::False : LBool::True;
  Trail.push_back(L);
  return true;
}

bool ClauseStore::addClause(std::vector<Lit> Lits) {
  std::sort(Lits.begin(), Lits.end());
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  for (size_t I = 0; I + 1 < Lits.size(); ++I)
    if (Lits[I + 1] == litNot(Lits[I]))
      return true; // tautology: L and ¬L are adjacent after sorting

  // Move non-false literals to the front so the watched positions start
  // on literals that can still satisfy the clause.
  size_t NonFalse = 0;
  for (size_t I = 0; I < Lits.size(); ++I)
    if (valueLit(Lits[I]) != LBool::False)
      std::swap(Lits[NonFalse++], Lits[I]);

  if (NonFalse == 0)
    return false; // all literals false: conflict at assert time
  if (NonFalse == 1 && valueLit(Lits[0]) == LBool::Undef) {
    if (!enqueue(Lits[0]))
      return false;
  }
  if (Lits.size() == 1)
    return enqueue(Lits[0]); // units are enqueued, never stored

  uint32_t Idx = static_cast<uint32_t>(Clauses.size());
  Clauses.push_back({std::move(Lits)});
  Watches[Clauses.back().Lits[0]].push_back(Idx);
  Watches[Clauses.back().Lits[1]].push_back(Idx);
  return true;
}

bool ClauseStore::propagate() {
  while (QHead < Trail.size()) {
    Lit P = Trail[QHead++]; // P just became true
    Lit FalseLit = litNot(P);
    std::vector<uint32_t> &WL = Watches[FalseLit];
    for (size_t I = 0; I < WL.size();) {
      Clause &C = Clauses[WL[I]];
      if (C.Lits[0] == FalseLit)
        std::swap(C.Lits[0], C.Lits[1]);
      // C.Lits[1] is the falsified watch; C.Lits[0] the other one.
      if (valueLit(C.Lits[0]) == LBool::True) {
        ++I;
        continue;
      }
      bool Moved = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (valueLit(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[C.Lits[1]].push_back(WL[I]);
          WL[I] = WL.back();
          WL.pop_back();
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue;
      // No replacement watch: the clause is unit on Lits[0], or false.
      if (!enqueue(C.Lits[0]))
        return false;
      ++I;
    }
  }
  return true;
}

void ClauseStore::shrinkTrailTo(size_t N) {
  while (Trail.size() > N) {
    Lit L = Trail.back();
    Trail.pop_back();
    Phase[litVar(L)] = litSign(L) ? 0 : 1;
    Assign[litVar(L)] = LBool::Undef;
  }
  if (QHead > N)
    QHead = N;
}

void ClauseStore::detachClause(uint32_t Idx) {
  const Clause &C = Clauses[Idx];
  for (size_t W = 0; W < 2; ++W) {
    std::vector<uint32_t> &WL = Watches[C.Lits[W]];
    for (size_t I = 0; I < WL.size(); ++I)
      if (WL[I] == Idx) {
        WL[I] = WL.back();
        WL.pop_back();
        break;
      }
  }
}

void ClauseStore::popTo(const Mark &M) {
  for (uint32_t Idx = static_cast<uint32_t>(Clauses.size()); Idx > M.Clauses;)
    detachClause(--Idx);
  Clauses.resize(M.Clauses);
  shrinkTrailTo(M.TrailSz);
}

void ClauseStore::clear() {
  Clauses.clear();
  Watches.clear();
  Assign.clear();
  Activity.clear();
  Phase.clear();
  Trail.clear();
  QHead = 0;
  ActivityInc = 1.0;
}

void ClauseStore::bump(BVar V) {
  Activity[V] += ActivityInc;
  if (Activity[V] > 1e100) { // rescale, preserving relative order
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

BVar ClauseStore::pickUnassigned(const std::vector<uint8_t> &Relevant) const {
  BVar Best = InvalidBVar;
  double BestAct = -1.0;
  for (BVar V = 0; V < Assign.size(); ++V)
    if (Relevant[V] && Assign[V] == LBool::Undef && Activity[V] > BestAct) {
      Best = V;
      BestAct = Activity[V];
    }
  return Best;
}

void ClauseStore::relevantVars(std::vector<uint8_t> &Out) const {
  Out.assign(Assign.size(), 0);
  for (const Clause &C : Clauses)
    for (Lit L : C.Lits)
      Out[litVar(L)] = 1;
}
