//===- obs/span.cpp -------------------------------------------------------===//

#include "obs/span.h"

#include "obs/trace_ring.h"

using namespace gillian::obs;

std::string_view gillian::obs::spanKindName(SpanKind K) {
  switch (K) {
  case SpanKind::Explore: return "explore";
  case SpanKind::Step: return "step";
  case SpanKind::Simplify: return "simplify";
  case SpanKind::Solver: return "solver";
  case SpanKind::CacheLookup: return "cache_lookup";
  case SpanKind::Slice: return "slice";
  case SpanKind::Canon: return "canon";
  case SpanKind::Syntactic: return "syntactic";
  case SpanKind::IncExtend: return "inc_extend";
  case SpanKind::ColdZ3: return "cold_z3";
  case SpanKind::ModelSearch: return "model_search";
  case SpanKind::NativeSolve: return "native_solve";
  case SpanKind::AsyncWait: return "async_wait";
  }
  return "unknown";
}

SpanTable &SpanTable::global() {
  static SpanTable T;
  return T;
}

SpanSnapshot SpanTable::snapshot() const {
  SpanSnapshot S;
  for (size_t I = 0; I < NumSpanKinds; ++I) {
    S.TotalNs[I] = Total[I].load(std::memory_order_relaxed);
    S.SelfNs[I] = Self[I].load(std::memory_order_relaxed);
    S.Count[I] = N[I].load(std::memory_order_relaxed);
  }
  return S;
}

void SpanTable::reset() {
  for (size_t I = 0; I < NumSpanKinds; ++I) {
    Total[I].store(0, std::memory_order_relaxed);
    Self[I].store(0, std::memory_order_relaxed);
    N[I].store(0, std::memory_order_relaxed);
  }
}

void SpanSnapshot::jsonInto(JsonWriter &W) const {
  for (size_t I = 0; I < NumSpanKinds; ++I) {
    if (Count[I] == 0)
      continue;
    W.key(spanKindName(static_cast<SpanKind>(I)));
    W.beginObject();
    W.field("total_ns", TotalNs[I]);
    W.field("self_ns", SelfNs[I]);
    W.field("count", Count[I]);
    W.endObject();
  }
}

std::string SpanSnapshot::json() const {
  JsonWriter W;
  W.beginObject();
  jsonInto(W);
  W.endObject();
  return W.take();
}

namespace gillian::obs::detail {

SpanFrame *&currentSpanFrame() {
  thread_local SpanFrame *Cur = nullptr;
  return Cur;
}

void spanTraceBegin(SpanKind K) {
  TraceRecorder::record(TraceEventKind::SpanBegin,
                        static_cast<uint8_t>(K));
}

void spanTraceEnd(SpanKind K) {
  TraceRecorder::record(TraceEventKind::SpanEnd, static_cast<uint8_t>(K));
}

} // namespace gillian::obs::detail
