//===- obs/trace_ring.cpp -------------------------------------------------===//

#include "obs/trace_ring.h"

#include <algorithm>
#include <chrono>

using namespace gillian::obs;

const char *gillian::obs::traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::SpanBegin: return "span_begin";
  case TraceEventKind::SpanEnd: return "span_end";
  case TraceEventKind::BranchTaken: return "branch_taken";
  case TraceEventKind::PathFinished: return "path_finished";
  case TraceEventKind::Steal: return "steal";
  case TraceEventKind::SessionReset: return "session_reset";
  case TraceEventKind::CacheEvict: return "cache_evict";
  }
  return "unknown";
}

namespace {
uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
} // namespace

TraceRecorder &TraceRecorder::instance() {
  static TraceRecorder R;
  return R;
}

void TraceRecorder::enable() {
  EpochNs.store(nowNs(), std::memory_order_relaxed);
  ObsConfig::setTrace(true);
}

void TraceRecorder::disable() { ObsConfig::setTrace(false); }

TraceRecorder::ThreadSlot *TraceRecorder::acquireSlot() {
  std::lock_guard<std::mutex> Lock(Mu);
  ThreadSlot *S;
  if (!Free.empty()) {
    S = Free.back();
    Free.pop_back();
  } else {
    Slots.push_back(std::make_unique<ThreadSlot>());
    S = Slots.back().get();
    S->Ring = std::make_unique<TraceRing>(ObsConfig::traceRingCapacity());
  }
  // A recycled ring keeps its buffered events (they belong to a thread
  // that no longer exists and will surface at the next drain); the new
  // owner gets a fresh dense id so exporters can tell the eras apart.
  S->Tid = NextTid++;
  return S;
}

void TraceRecorder::releaseSlot(ThreadSlot *S) {
  std::lock_guard<std::mutex> Lock(Mu);
  Free.push_back(S);
}

void TraceRecorder::recordImpl(TraceEventKind K, uint8_t Arg0, uint32_t A,
                               uint64_t B) {
  thread_local SlotLease Lease;
  if (!Lease.S || Lease.R != this) {
    Lease.R = this;
    Lease.S = acquireSlot();
  }
  uint64_t Epoch = EpochNs.load(std::memory_order_relaxed);
  uint64_t Now = nowNs();
  TraceEvent E;
  E.TsNs = Now >= Epoch ? Now - Epoch : 0;
  E.B = B;
  E.Tid = Lease.S->Tid;
  E.A = A;
  E.Kind = K;
  E.Arg0 = Arg0;
  Lease.S->Ring->record(E);
}

std::vector<TraceEvent> TraceRecorder::drain() {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TraceEvent> Out;
  for (auto &S : Slots)
    S->Ring->drainInto(Out);
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &X, const TraceEvent &Y) {
                     return X.TsNs < Y.TsNs;
                   });
  return Out;
}

void TraceRecorder::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &S : Slots) {
    std::vector<TraceEvent> Sink;
    S->Ring->drainInto(Sink);
  }
}
