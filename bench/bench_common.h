//===- bench/bench_common.h - Shared bench-driver plumbing ----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The argument parsing, observability wiring and cold-start idiom shared
/// by the five bench drivers. Every driver accepts:
///
///   --workers=N / --workers N   worker count of the parallel
///                               configurations (default 4, the acceptance
///                               target's core count)
///   --strategy=NAME             path-selection strategy of the parallel
///                               configurations: oldest (default), random,
///                               subtree, coverage — see DESIGN.md §4e
///   --json / --no-json          emit / suppress the trailing
///                               machine-readable JSON line (default on)
///   --trace-out=FILE            enable the flight recorder and write a
///                               chrome://tracing JSON file at exit
///   --obs-detail                enable the per-step / per-simplify detail
///                               spans (hot; off by default)
///   --cache-file=FILE           persist the canonical solver result cache
///                               across invocations: load FILE at startup
///                               (and re-seed it after every coldStart()),
///                               save the cache back at exit. The
///                               procedure summary store persists
///                               alongside, in FILE.summaries
///   --no-summaries              disable the procedure summary cache in
///                               the Gillian-configured rows (the
///                               ablation of DESIGN.md §4g)
///   --serve=HOST:PORT           start the live introspection HTTP server
///                               (/metrics /stats /trace /progress
///                               /healthz); PORT 0 binds an ephemeral port,
///                               announced on stderr for CI discovery
///   --serve-linger-ms=N         keep the process alive up to N ms after
///                               the workload so a scraper can connect;
///                               exits early once >= 1 request was served
///                               and ~1.5 s passed since the last one
///   --heartbeat-out=FILE        append one progress JSONL line per
///                               sampling interval (rates from snapshot
///                               deltas; see EXPERIMENTS.md for plotting)
///   --metrics-interval=MS       heartbeat sampling cadence (default 1000)
///   --metrics-window=MS         rolling-rate window of /progress and the
///                               heartbeat's *_window rates (default
///                               10000, clamped to >= 100)
///   --journal-out=FILE          enable the lossless execution journal and
///                               write it (binary, DESIGN.md §4i) at exit;
///                               inspect with tools/gillian-inspect
///
/// Arguments the parser consumes are removed from argv, so drivers built
/// on google-benchmark can hand the remainder to benchmark::Initialize.
///
/// Drivers call setupObs(Args) once after parsing and finishObs(Args)
/// once before exiting; JSON lines are built with obs::JsonWriter (the
/// one JSON emitter of the codebase) instead of per-driver snprintf
/// format strings.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_BENCH_BENCH_COMMON_H
#define GILLIAN_BENCH_BENCH_COMMON_H

#include "engine/scheduler/scheduler_options.h"
#include "engine/summary/summary_store.h"
#include "obs/exporters.h"
#include "obs/introspect/introspect_server.h"
#include "obs/introspect/sampler.h"
#include "obs/journal/journal.h"
#include "obs/journal/journal_io.h"
#include "obs/json_writer.h"
#include "obs/obs_config.h"
#include "obs/span.h"
#include "obs/trace_ring.h"
#include "solver/incremental_session.h"
#include "solver/native/native_session.h"
#include "solver/native/query_service.h"
#include "solver/simplifier.h"
#include "solver/solver.h"
#include "solver/solver_cache.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace gillian::bench {

struct BenchArgs {
  uint32_t Workers = 4; ///< worker count of the parallel configurations
  /// Path-selection strategy of the parallel configurations; drivers
  /// echo strategyName(Strategy) into their JSON lines so downstream
  /// tooling can tell ablation rows apart.
  SelectionStrategy Strategy = SelectionStrategy::OldestFirst;
  /// Native theory layer of the default configurations (--no-native turns
  /// it off; the ablation driver also toggles it per row).
  bool Native = true;
  /// Async solver service threads of the default configurations (0 =
  /// inline solving; --async=N routes undecided queries through the
  /// batching/deduplicating service).
  uint32_t Async = 0;
  /// Procedure summary cache of the Gillian-configured rows
  /// (--no-summaries turns it off; the legacy rows never use it).
  bool Summaries = true;
  bool Json = true;     ///< emit the trailing machine-readable JSON line
  bool ObsDetail = false; ///< per-step / per-simplify detail spans
  std::string TraceOut;   ///< chrome://tracing output path ("" = off)
  std::string CacheFile;  ///< persisted solver result cache ("" = off)
  std::string Serve;      ///< introspection server "host:port" ("" = off)
  std::string HeartbeatOut;      ///< heartbeat JSONL path ("" = off)
  std::string JournalOut;        ///< execution-journal path ("" = off)
  uint64_t MetricsIntervalMs = 1000; ///< heartbeat cadence
  uint64_t MetricsWindowMs = 0;  ///< rolling-rate window (0 = default)
  uint64_t ServeLingerMs = 0;    ///< post-workload serve window
};

/// Parses (and strips from argv) the shared driver arguments; exits with a
/// diagnostic on a malformed value.
inline BenchArgs parseBenchArgs(int &argc, char **argv) {
  BenchArgs Args;
  auto parseWorkers = [](const char *Value) -> uint32_t {
    char *End = nullptr;
    unsigned long N = std::strtoul(Value, &End, 10);
    if (End == Value || *End != '\0' || N == 0 || N > 1024) {
      std::fprintf(stderr, "invalid --workers value: %s\n", Value);
      std::exit(2);
    }
    return static_cast<uint32_t>(N);
  };
  auto nextValue = [&](int &In, const char *Flag) -> const char * {
    if (In + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", Flag);
      std::exit(2);
    }
    return argv[++In];
  };
  auto parseStrategyArg = [](const char *Value) -> SelectionStrategy {
    if (auto S = parseStrategy(Value))
      return *S;
    std::fprintf(stderr,
                 "invalid --strategy value: %s "
                 "(want oldest|random|subtree|coverage)\n",
                 Value);
    std::exit(2);
  };
  auto parseMs = [](const char *Flag, const char *Value) -> uint64_t {
    char *End = nullptr;
    unsigned long long N = std::strtoull(Value, &End, 10);
    if (End == Value || *End != '\0') {
      std::fprintf(stderr, "invalid %s value: %s\n", Flag, Value);
      std::exit(2);
    }
    return N;
  };
  int Out = 1;
  for (int In = 1; In < argc; ++In) {
    const char *A = argv[In];
    if (std::strncmp(A, "--workers=", 10) == 0) {
      Args.Workers = parseWorkers(A + 10);
    } else if (std::strcmp(A, "--workers") == 0) {
      Args.Workers = parseWorkers(nextValue(In, "--workers"));
    } else if (std::strncmp(A, "--strategy=", 11) == 0) {
      Args.Strategy = parseStrategyArg(A + 11);
    } else if (std::strcmp(A, "--strategy") == 0) {
      Args.Strategy = parseStrategyArg(nextValue(In, "--strategy"));
    } else if (std::strcmp(A, "--no-native") == 0) {
      Args.Native = false;
    } else if (std::strcmp(A, "--no-summaries") == 0) {
      Args.Summaries = false;
    } else if (std::strncmp(A, "--async=", 8) == 0) {
      Args.Async = static_cast<uint32_t>(parseMs("--async", A + 8));
    } else if (std::strcmp(A, "--async") == 0) {
      Args.Async =
          static_cast<uint32_t>(parseMs("--async", nextValue(In, "--async")));
    } else if (std::strcmp(A, "--json") == 0) {
      Args.Json = true;
    } else if (std::strcmp(A, "--no-json") == 0) {
      Args.Json = false;
    } else if (std::strncmp(A, "--trace-out=", 12) == 0) {
      Args.TraceOut = A + 12;
    } else if (std::strcmp(A, "--trace-out") == 0) {
      Args.TraceOut = nextValue(In, "--trace-out");
    } else if (std::strncmp(A, "--cache-file=", 13) == 0) {
      Args.CacheFile = A + 13;
    } else if (std::strcmp(A, "--cache-file") == 0) {
      Args.CacheFile = nextValue(In, "--cache-file");
    } else if (std::strcmp(A, "--obs-detail") == 0) {
      Args.ObsDetail = true;
    } else if (std::strncmp(A, "--serve=", 8) == 0) {
      Args.Serve = A + 8;
    } else if (std::strcmp(A, "--serve") == 0) {
      Args.Serve = nextValue(In, "--serve");
    } else if (std::strncmp(A, "--heartbeat-out=", 16) == 0) {
      Args.HeartbeatOut = A + 16;
    } else if (std::strcmp(A, "--heartbeat-out") == 0) {
      Args.HeartbeatOut = nextValue(In, "--heartbeat-out");
    } else if (std::strncmp(A, "--metrics-interval=", 19) == 0) {
      Args.MetricsIntervalMs = parseMs("--metrics-interval", A + 19);
    } else if (std::strcmp(A, "--metrics-interval") == 0) {
      Args.MetricsIntervalMs =
          parseMs("--metrics-interval", nextValue(In, "--metrics-interval"));
    } else if (std::strncmp(A, "--metrics-window=", 17) == 0) {
      Args.MetricsWindowMs = parseMs("--metrics-window", A + 17);
    } else if (std::strcmp(A, "--metrics-window") == 0) {
      Args.MetricsWindowMs =
          parseMs("--metrics-window", nextValue(In, "--metrics-window"));
    } else if (std::strncmp(A, "--journal-out=", 14) == 0) {
      Args.JournalOut = A + 14;
    } else if (std::strcmp(A, "--journal-out") == 0) {
      Args.JournalOut = nextValue(In, "--journal-out");
    } else if (std::strncmp(A, "--serve-linger-ms=", 18) == 0) {
      Args.ServeLingerMs = parseMs("--serve-linger-ms", A + 18);
    } else if (std::strcmp(A, "--serve-linger-ms") == 0) {
      Args.ServeLingerMs =
          parseMs("--serve-linger-ms", nextValue(In, "--serve-linger-ms"));
    } else {
      argv[Out++] = argv[In];
    }
  }
  argc = Out;
  argv[argc] = nullptr;
  return Args;
}

/// The cache file coldStart() re-seeds from (set by setupObs).
inline std::string &persistedCacheFile() {
  static std::string Path;
  return Path;
}

/// The summary-store sibling of a --cache-file path.
inline std::string summaryCacheFile(const std::string &CachePath) {
  return CachePath + ".summaries";
}

/// Seeds the process-wide result cache from a persisted cache file.
inline long loadPersistedCache(const std::string &Path) {
  Solver S(SolverOptions(), SolverCache::process());
  return S.loadCache(Path);
}

/// Saves the process-wide result cache to a persisted cache file.
inline long savePersistedCache(const std::string &Path) {
  Solver S(SolverOptions(), SolverCache::process());
  return S.saveCache(Path);
}

/// The driver-lifetime heartbeat sampler (started by setupObs under
/// --heartbeat-out, stopped by finishObs).
inline obs::HeartbeatSampler &processHeartbeat() {
  static obs::HeartbeatSampler S;
  return S;
}

/// Applies the observability and persistence flags: detail spans, the
/// flight recorder, the live introspection server, the heartbeat sampler,
/// and the warm-start cache load. Call once after parseBenchArgs.
inline void setupObs(const BenchArgs &Args) {
  if (Args.ObsDetail)
    obs::ObsConfig::setDetailedSpans(true);
  if (Args.MetricsWindowMs > 0)
    obs::setMetricsWindowMs(Args.MetricsWindowMs);
  if (!Args.JournalOut.empty())
    obs::journal::setEnabled(true);
  if (!Args.TraceOut.empty())
    obs::TraceRecorder::instance().enable();
  if (!Args.Serve.empty())
    obs::startProcessIntrospection(Args.Serve);
  if (!Args.HeartbeatOut.empty()) {
    if (processHeartbeat().start(Args.HeartbeatOut, Args.MetricsIntervalMs))
      std::fprintf(stderr, "[bench] heartbeat JSONL -> %s (every %llu ms)\n",
                   Args.HeartbeatOut.c_str(),
                   static_cast<unsigned long long>(
                       Args.MetricsIntervalMs < 10 ? 10
                                                   : Args.MetricsIntervalMs));
    else
      std::fprintf(stderr, "[bench] failed to open heartbeat file %s\n",
                   Args.HeartbeatOut.c_str());
  }
  if (!Args.CacheFile.empty()) {
    persistedCacheFile() = Args.CacheFile;
    long N = loadPersistedCache(Args.CacheFile);
    if (N > 0)
      std::fprintf(stderr, "[bench] warm start: %ld solver-cache entries "
                           "from %s\n",
                   N, Args.CacheFile.c_str());
    long M =
        ProcedureSummaryStore::process().load(summaryCacheFile(Args.CacheFile));
    if (M > 0)
      std::fprintf(stderr, "[bench] warm start: %ld procedure summaries "
                           "from %s\n",
                   M, summaryCacheFile(Args.CacheFile).c_str());
  }
}

/// Writes the chrome trace, saves the persisted cache, stops the
/// heartbeat sampler, and rides out the --serve-linger-ms window (per
/// Args). Call once before exiting.
inline void finishObs(const BenchArgs &Args) {
  if (!Args.HeartbeatOut.empty())
    processHeartbeat().stop();
  if (!Args.JournalOut.empty()) {
    obs::journal::JournalData D = obs::journal::capture();
    std::string Err;
    if (obs::journal::writeJournalFile(D, Args.JournalOut, nullptr, &Err))
      std::fprintf(stderr, "[bench] wrote journal (%zu events) to %s\n",
                   D.Events.size(), Args.JournalOut.c_str());
    else
      std::fprintf(stderr, "[bench] failed to write journal to %s: %s\n",
                   Args.JournalOut.c_str(), Err.c_str());
  }
  if (!Args.Serve.empty() && Args.ServeLingerMs > 0 &&
      obs::processIntrospectServer().running()) {
    // Keep serving so an out-of-process scraper (CI's curl loop) can
    // still connect after the workload; exit early once somebody has
    // scraped and then gone quiet for ~1.5 s.
    obs::IntrospectServer &S = obs::processIntrospectServer();
    auto now = [] {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };
    constexpr uint64_t QuietNs = 1500ull * 1000 * 1000;
    uint64_t Deadline = now() + Args.ServeLingerMs * 1000000ull;
    while (now() < Deadline) {
      uint64_t Last = S.lastRequestNs();
      if (S.requestsServed() > 0 && Last != 0 && now() - Last > QuietNs)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    S.stop();
  }
  if (!Args.TraceOut.empty()) {
    if (obs::writeChromeTrace(Args.TraceOut))
      std::fprintf(stderr, "[bench] chrome trace written to %s\n",
                   Args.TraceOut.c_str());
    else
      std::fprintf(stderr, "[bench] failed to write trace to %s\n",
                   Args.TraceOut.c_str());
  }
  if (!Args.CacheFile.empty()) {
    long N = savePersistedCache(Args.CacheFile);
    if (N >= 0)
      std::fprintf(stderr, "[bench] saved %ld solver-cache entries to %s\n",
                   N, Args.CacheFile.c_str());
    else
      std::fprintf(stderr, "[bench] failed to save solver cache to %s\n",
                   Args.CacheFile.c_str());
    long M =
        ProcedureSummaryStore::process().save(summaryCacheFile(Args.CacheFile));
    if (M >= 0)
      std::fprintf(stderr, "[bench] saved %ld procedure summaries to %s\n",
                   M, summaryCacheFile(Args.CacheFile).c_str());
    else
      std::fprintf(stderr, "[bench] failed to save summaries to %s\n",
                   summaryCacheFile(Args.CacheFile).c_str());
  }
}

/// A genuinely cold solver for the next timed configuration: clears the
/// process-wide result cache, the sharded simplifier memo, and every
/// thread's incremental Z3 sessions + encoding memos (runSuite feeds all
/// three, which would otherwise warm every later row). Under --cache-file
/// the result cache is then re-seeded from the persisted entries — the
/// explicit opt-in warm start, identical for every row.
inline void coldStart() {
  resetSimplifyCache();
  SolverCache::process().clear();
  IncrementalSessionPool::invalidateAll();
  IncrementalSessionPool::forThread().reset();
  native::SolverService::process().flush();
  native::NativeSessionPool::invalidateAll();
  native::NativeSessionPool::forThread().reset();
  ProcedureSummaryStore::process().clear();
  if (!persistedCacheFile().empty()) {
    loadPersistedCache(persistedCacheFile());
    ProcedureSummaryStore::process().load(
        summaryCacheFile(persistedCacheFile()));
  }
}

inline double seconds(std::chrono::steady_clock::time_point From) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       From)
      .count();
}

} // namespace gillian::bench

#endif // GILLIAN_BENCH_BENCH_COMMON_H
