//===- solver/path_condition.h - Path conditions π ∈ Π ---------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Path conditions (§2.3): boolean logical expressions that bookkeep the
/// constraints on logical variables that led execution to the current
/// symbolic state. Stored in *canonical form*: a deduplicated conjunct
/// list kept sorted under ExprOrdering, so that two conditions carrying
/// the same constraint set compare equal (and hash equal) regardless of
/// the order in which branches contributed the conjuncts. Conjunctions
/// are flattened on insertion and a literal `false` collapses the whole
/// condition.
///
/// The canonical form is what makes the solver's result cache
/// insertion-order-insensitive: a query reached via branch order A∧B and
/// one reached via B∧A share one cache entry. It also makes containment
/// a linear merge-walk instead of the quadratic scan the naive
/// representation needs.
///
/// Path conditions are the classical instance of the paper's *restriction*
/// concept (§3.1): restricting a state by another strengthens its path
/// condition (see SymbolicState::restrict).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_PATH_CONDITION_H
#define GILLIAN_SOLVER_PATH_CONDITION_H

#include "gil/expr.h"

#include <vector>

namespace gillian {

class PathCondition {
public:
  /// The trivially-true path condition.
  PathCondition() = default;

  /// Conjoins \p E (already simplified by the caller or not — literal
  /// `true` is dropped, conjunctions are flattened, duplicates skipped).
  /// The conjunct is inserted at its canonical (sorted) position.
  void add(const Expr &E);

  /// Conjoins every conjunct of \p Other (the π ∧ π' of Def 2.6 and the
  /// restriction operator of §3.1).
  void addAll(const PathCondition &Other);

  /// Wraps an already canonical conjunct list (sorted under ExprOrdering,
  /// deduplicated, free of `true`/`false`/`And` nodes) without re-sorting.
  /// Used by the solver's slicing layer, whose slices are subsequences of
  /// a canonical condition and therefore canonical themselves.
  static PathCondition fromSortedConjuncts(std::vector<Expr> Sorted);

  /// True when a literal `false` has been added: the condition is known
  /// unsatisfiable without consulting a solver.
  bool isTriviallyFalse() const { return TriviallyFalse; }

  /// Conjuncts in canonical (ExprOrdering-sorted) order.
  const std::vector<Expr> &conjuncts() const { return Conjuncts; }
  size_t size() const { return Conjuncts.size(); }
  bool empty() const { return Conjuncts.empty() && !TriviallyFalse; }

  /// Single conjunction expression (for printing / Z3 round-trips).
  Expr asExpr() const;

  /// Structural containment: every conjunct of \p Other appears here.
  /// This is the ⊑ pre-order induced by path-condition restriction.
  /// O(n + m) merge-walk over the two canonical conjunct lists.
  bool contains(const PathCondition &Other) const;

  /// Order-insensitive by construction: the hash commutes over conjuncts,
  /// so permuted insertion orders collide on purpose.
  size_t hash() const { return Hash; }
  friend bool operator==(const PathCondition &A, const PathCondition &B) {
    return A.TriviallyFalse == B.TriviallyFalse && A.Hash == B.Hash &&
           A.Conjuncts == B.Conjuncts;
  }

  std::string toString() const;

  /// Adds all logical variables mentioned by any conjunct.
  void collectLVars(std::set<InternedString> &Out) const;

private:
  std::vector<Expr> Conjuncts;
  bool TriviallyFalse = false;
  size_t Hash = 0x243F6A8885A308D3ull;
};

} // namespace gillian

template <> struct std::hash<gillian::PathCondition> {
  size_t operator()(const gillian::PathCondition &P) const noexcept {
    return P.hash();
  }
};

#endif // GILLIAN_SOLVER_PATH_CONDITION_H
