file(REMOVE_RECURSE
  "CMakeFiles/gillian_solver.dir/model.cpp.o"
  "CMakeFiles/gillian_solver.dir/model.cpp.o.d"
  "CMakeFiles/gillian_solver.dir/path_condition.cpp.o"
  "CMakeFiles/gillian_solver.dir/path_condition.cpp.o.d"
  "CMakeFiles/gillian_solver.dir/simplifier.cpp.o"
  "CMakeFiles/gillian_solver.dir/simplifier.cpp.o.d"
  "CMakeFiles/gillian_solver.dir/solver.cpp.o"
  "CMakeFiles/gillian_solver.dir/solver.cpp.o.d"
  "CMakeFiles/gillian_solver.dir/syntactic.cpp.o"
  "CMakeFiles/gillian_solver.dir/syntactic.cpp.o.d"
  "CMakeFiles/gillian_solver.dir/type_infer.cpp.o"
  "CMakeFiles/gillian_solver.dir/type_infer.cpp.o.d"
  "CMakeFiles/gillian_solver.dir/z3_backend.cpp.o"
  "CMakeFiles/gillian_solver.dir/z3_backend.cpp.o.d"
  "libgillian_solver.a"
  "libgillian_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gillian_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
