//===- obs/exporters.cpp --------------------------------------------------===//

#include "obs/exporters.h"

#include "obs/action_counters.h"
#include "obs/journal/journal.h"
#include "obs/sched_counters.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <vector>

using namespace gillian::obs;

namespace {

void eventCommon(JsonWriter &W, const TraceEvent &E, const char *Name,
                 const char *Phase) {
  W.field("name", Name);
  W.field("ph", Phase);
  // Trace Event Format timestamps are microseconds; keep ns resolution in
  // the fraction.
  W.field("ts", static_cast<double>(E.TsNs) / 1000.0, 3);
  W.field("pid", 1);
  W.field("tid", E.Tid);
}

const char *spanName(uint8_t Arg0) {
  if (Arg0 >= NumSpanKinds)
    return "unknown_span";
  return spanKindName(static_cast<SpanKind>(Arg0)).data();
}

} // namespace

std::string gillian::obs::chromeTraceJson(const std::vector<TraceEvent> &Events) {
  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();

  // Per-tid stack of open spans. An end without a begin means the ring's
  // wrap ate the begin — drop it so "B"/"E" pairs always nest; a begin
  // without an end (trace drained mid-span, or the end was on a later
  // era of a recycled ring) is closed at its thread's last timestamp.
  struct TidState {
    uint32_t Tid;
    std::vector<uint8_t> Open; ///< SpanKind stack
    uint64_t LastTs = 0;
  };
  std::vector<TidState> Tids;
  auto stateFor = [&Tids](uint32_t Tid) -> TidState & {
    for (TidState &S : Tids)
      if (S.Tid == Tid)
        return S;
    Tids.push_back(TidState{Tid, {}, 0});
    return Tids.back();
  };

  for (const TraceEvent &E : Events) {
    TidState &S = stateFor(E.Tid);
    S.LastTs = E.TsNs;
    switch (E.Kind) {
    case TraceEventKind::SpanBegin: {
      W.beginObject();
      eventCommon(W, E, spanName(E.Arg0), "B");
      W.endObject();
      S.Open.push_back(E.Arg0);
      break;
    }
    case TraceEventKind::SpanEnd: {
      // Unwind to the matching begin if intermediate ends were lost to a
      // wrap; if no begin survives, drop the end.
      if (S.Open.empty())
        break;
      while (!S.Open.empty() && S.Open.back() != E.Arg0) {
        W.beginObject();
        eventCommon(W, E, spanName(S.Open.back()), "E");
        W.endObject();
        S.Open.pop_back();
      }
      if (S.Open.empty())
        break;
      W.beginObject();
      eventCommon(W, E, spanName(E.Arg0), "E");
      W.endObject();
      S.Open.pop_back();
      break;
    }
    default: {
      W.beginObject();
      eventCommon(W, E, traceEventKindName(E.Kind), "i");
      W.field("s", "t"); // instant scope: thread
      W.key("args");
      W.beginObject();
      switch (E.Kind) {
      case TraceEventKind::BranchTaken:
        W.field("successors", E.A);
        break;
      case TraceEventKind::PathFinished:
        W.field("outcome", static_cast<uint64_t>(E.Arg0));
        break;
      case TraceEventKind::Steal:
        W.field("batch", E.A);
        W.field("victim_depth", E.B);
        break;
      case TraceEventKind::SessionReset:
        W.field("frames_discarded", E.A);
        break;
      case TraceEventKind::CacheEvict:
        W.field("pool_size", E.A);
        break;
      default:
        break;
      }
      W.endObject();
      W.endObject();
      break;
    }
    }
  }

  // Close whatever is still open so every "B" has an "E".
  for (TidState &S : Tids) {
    while (!S.Open.empty()) {
      TraceEvent E{};
      E.TsNs = S.LastTs;
      E.Tid = S.Tid;
      W.beginObject();
      eventCommon(W, E, spanName(S.Open.back()), "E");
      W.endObject();
      S.Open.pop_back();
    }
  }

  W.endArray();
  W.field("displayTimeUnit", "ns");
  W.endObject();
  return W.take();
}

bool gillian::obs::writeChromeTrace(const std::string &Path) {
  std::string Json = chromeTraceJson(TraceRecorder::instance().drain());
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << Json << "\n";
  return static_cast<bool>(Out);
}

void gillian::obs::maybeEnableEnvTrace() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    const char *Path = std::getenv("GILLIAN_TRACE_OUT");
    if (!Path || !*Path)
      return;
    TraceRecorder::instance().enable();
    static std::string Out;
    Out = Path;
    std::atexit([] {
      if (writeChromeTrace(Out))
        std::fprintf(stderr, "[obs] wrote chrome trace to %s\n",
                     Out.c_str());
      else
        std::fprintf(stderr, "[obs] failed to write chrome trace to %s\n",
                     Out.c_str());
    });
  });
}

std::string gillian::obs::obsStatsJson(const SpanSnapshot &Spans) {
  JsonWriter W;
  W.beginObject();
  W.key("spans");
  W.raw(Spans.json());
  W.key("actions");
  W.raw(ActionCounters::instance().json());
  W.key("scheduler");
  W.raw(schedCounters().countersJson());
  W.key("journal");
  W.raw(journal::statsJson());
  W.endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// validateJson — a recursive-descent structural check.
//===----------------------------------------------------------------------===//

namespace {

struct JsonChecker {
  std::string_view S;
  size_t I = 0;
  int Depth = 0;
  static constexpr int MaxDepth = 256;

  void ws() {
    while (I < S.size() && (S[I] == ' ' || S[I] == '\t' || S[I] == '\n' ||
                            S[I] == '\r'))
      ++I;
  }
  bool eat(char C) {
    if (I < S.size() && S[I] == C) {
      ++I;
      return true;
    }
    return false;
  }
  bool lit(std::string_view L) {
    if (S.compare(I, L.size(), L) != 0)
      return false;
    I += L.size();
    return true;
  }

  bool string() {
    if (!eat('"'))
      return false;
    while (I < S.size()) {
      char C = S[I++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (I >= S.size())
          return false;
        char E = S[I++];
        if (E == 'u') {
          for (int K = 0; K < 4; ++K)
            if (I >= S.size() || !std::isxdigit(static_cast<unsigned char>(S[I++])))
              return false;
        } else if (!strchr("\"\\/bfnrt", E)) {
          return false;
        }
      } else if (static_cast<unsigned char>(C) < 0x20) {
        return false;
      }
    }
    return false;
  }

  bool number() {
    size_t Start = I;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(I < S.size() ? S[I] : '\0')))
      return false;
    while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
      ++I;
    if (eat('.')) {
      if (I >= S.size() || !std::isdigit(static_cast<unsigned char>(S[I])))
        return false;
      while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    if (I < S.size() && (S[I] == 'e' || S[I] == 'E')) {
      ++I;
      if (I < S.size() && (S[I] == '+' || S[I] == '-'))
        ++I;
      if (I >= S.size() || !std::isdigit(static_cast<unsigned char>(S[I])))
        return false;
      while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    return I > Start;
  }

  bool value() {
    if (++Depth > MaxDepth)
      return false;
    ws();
    bool Ok;
    if (I >= S.size()) {
      Ok = false;
    } else if (S[I] == '{') {
      ++I;
      ws();
      if (eat('}')) {
        Ok = true;
      } else {
        Ok = true;
        while (true) {
          ws();
          if (!string() || (ws(), !eat(':')) || !value()) {
            Ok = false;
            break;
          }
          ws();
          if (eat(','))
            continue;
          Ok = eat('}');
          break;
        }
      }
    } else if (S[I] == '[') {
      ++I;
      ws();
      if (eat(']')) {
        Ok = true;
      } else {
        Ok = true;
        while (true) {
          if (!value()) {
            Ok = false;
            break;
          }
          ws();
          if (eat(','))
            continue;
          Ok = eat(']');
          break;
        }
      }
    } else if (S[I] == '"') {
      Ok = string();
    } else if (S[I] == 't') {
      Ok = lit("true");
    } else if (S[I] == 'f') {
      Ok = lit("false");
    } else if (S[I] == 'n') {
      Ok = lit("null");
    } else {
      Ok = number();
    }
    --Depth;
    return Ok;
  }
};

} // namespace

bool gillian::obs::validateJson(std::string_view Json) {
  JsonChecker C{Json};
  if (!C.value())
    return false;
  C.ws();
  return C.I == Json.size();
}
