file(REMOVE_RECURSE
  "CMakeFiles/targets_collections_test.dir/targets/collections_test.cpp.o"
  "CMakeFiles/targets_collections_test.dir/targets/collections_test.cpp.o.d"
  "targets_collections_test"
  "targets_collections_test.pdb"
  "targets_collections_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targets_collections_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
