//===- solver/z3_backend.cpp ----------------------------------------------===//

#include "solver/z3_backend.h"

#ifdef GILLIAN_HAVE_Z3

#include "solver/z3_encoder.h"

#include <cstdlib>
#include <map>
#include <set>
#include <string>

using namespace gillian;

z3::context &gillian::threadZ3Context() {
  static thread_local z3::context Ctx;
  return Ctx;
}

namespace {

/// Converts one Z3 model value back into a GIL value of type \p T.
std::optional<Value> decodeModelValue(z3::context &Ctx, const z3::expr &V,
                                      GilType T,
                                      const std::map<uint32_t, InternedString>
                                          &SymCodes,
                                      uint32_t &FreshSym) {
  (void)Ctx;
  switch (T) {
  case GilType::Int: {
    int64_t I = 0;
    if (V.is_numeral_i64(I))
      return Value::intV(I);
    return std::nullopt;
  }
  case GilType::Num: {
    if (!V.is_numeral())
      return std::nullopt;
    int64_t Num = 0, Den = 1;
    if (V.numerator().is_numeral_i64(Num) &&
        V.denominator().is_numeral_i64(Den) && Den != 0)
      return Value::numV(static_cast<double>(Num) /
                         static_cast<double>(Den));
    // Fall back through a decimal rendering for huge rationals.
    std::string S = V.get_decimal_string(17);
    if (!S.empty() && S.back() == '?')
      S.pop_back();
    return Value::numV(std::strtod(S.c_str(), nullptr));
  }
  case GilType::Bool:
    if (V.is_true())
      return Value::boolV(true);
    if (V.is_false())
      return Value::boolV(false);
    return std::nullopt;
  case GilType::Str:
    if (V.is_string_value())
      return Value::strV(V.get_string());
    return std::nullopt;
  case GilType::Sym: {
    int64_t Code = 0;
    if (!V.is_numeral_i64(Code))
      return std::nullopt;
    auto It = SymCodes.find(static_cast<uint32_t>(Code));
    if (It != SymCodes.end())
      return Value::symV(It->second);
    // A symbol the formula never named: any fresh one will do.
    return Value::symV("$z3_" + std::to_string(FreshSym++));
  }
  case GilType::Type: {
    int64_t Code = 0;
    if (V.is_numeral_i64(Code) && Code >= 0 && Code <= 7)
      return Value::typeV(static_cast<GilType>(Code));
    return std::nullopt;
  }
  case GilType::Proc:
  case GilType::List:
    return std::nullopt;
  }
  return std::nullopt;
}

} // namespace

bool gillian::z3Available() { return true; }

Z3Outcome gillian::checkSatZ3(const PathCondition &PC, const TypeEnv &Types,
                              bool WantModel) {
  Z3Outcome Out;
  if (PC.isTriviallyFalse()) {
    Out.Verdict = SatResult::Unsat;
    return Out;
  }
  try {
    // The thread's shared context (see z3_encoder.h); each cold query gets
    // a fresh solver over it. No encoding memo here: model extraction
    // needs the symbol codes a memo hit would skip harvesting.
    z3::context &Ctx = threadZ3Context();
    z3::solver S(Ctx);
    Encoder Enc(Ctx, Types);
    size_t Encoded = 0;
    for (const Expr &C : PC.conjuncts()) {
      try {
        S.add(Enc.encode(C));
        ++Encoded;
      } catch (const Unsupported &) {
        Out.DroppedConjuncts = true;
      }
    }
    z3::check_result R = S.check();
    if (R == z3::unsat) {
      Out.Verdict = SatResult::Unsat; // subset already contradictory
      return Out;
    }
    if (R == z3::unknown) {
      Out.Verdict = SatResult::Unknown;
      return Out;
    }
    Out.Verdict = Out.DroppedConjuncts ? SatResult::Unknown : SatResult::Sat;
    if (!WantModel)
      return Out;

    z3::model M = S.get_model();
    Model GM;
    std::set<InternedString> LVars;
    PC.collectLVars(LVars);
    uint32_t FreshSym = 0;
    for (InternedString X : LVars) {
      GilType T = Types.lookup(X).value_or(GilType::Int);
      z3::expr V = M.eval(Enc.var(X, T), /*model_completion=*/true);
      auto GV = decodeModelValue(Ctx, V, T, Enc.symbolCodes(), FreshSym);
      if (!GV) {
        Out.CandidateModel.reset();
        return Out;
      }
      GM.bind(X, std::move(*GV));
    }
    Out.CandidateModel = std::move(GM);
    return Out;
  } catch (const z3::exception &) {
    Out.Verdict = SatResult::Unknown;
    Out.CandidateModel.reset();
    return Out;
  } catch (const Unsupported &) {
    Out.Verdict = SatResult::Unknown;
    return Out;
  }
}

#else // !GILLIAN_HAVE_Z3

using namespace gillian;

bool gillian::z3Available() { return false; }

Z3Outcome gillian::checkSatZ3(const PathCondition &, const TypeEnv &, bool) {
  return Z3Outcome{};
}

#endif // GILLIAN_HAVE_Z3
