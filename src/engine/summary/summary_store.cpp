//===- engine/summary/summary_store.cpp - Procedure summary cache --------===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "engine/summary/summary_store.h"

#include "gil/parser.h"
#include "solver/solver.h"
#include "solver/syntactic.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <unistd.h>

using namespace gillian;

//===----------------------------------------------------------------------===//
// Key, eligibility, fingerprint, slicing
//===----------------------------------------------------------------------===//

size_t SummaryKey::hash() const {
  size_t H = 0xCBF29CE484222325ull ^ Fingerprint;
  H = H * 0x100000001B3ull ^ Arg.hash();
  H = H * 0x100000001B3ull ^ Slice.hash();
  return H;
}

bool gillian::summaryEligible(const Proc &P) {
  if (P.Body.empty())
    return false;
  for (size_t I = 0; I < P.Body.size(); ++I) {
    const Cmd &C = P.Body[I];
    switch (C.Kind) {
    case CmdKind::Assign:
    case CmdKind::Return:
    case CmdKind::Fail:
    case CmdKind::Vanish:
      break;
    case CmdKind::IfGoto:
      // Back-edges (and self-loops) mean loops mean unbounded trees and
      // loop-budget interactions; only strictly-forward jumps qualify.
      if (C.Target <= I)
        return false;
      break;
    case CmdKind::Call:
    case CmdKind::Action:
    case CmdKind::USym:
    case CmdKind::ISym:
      return false;
    }
  }
  return true;
}

uint64_t gillian::summaryFingerprint(const Proc &P) {
  uint64_t H = 0xCBF29CE484222325ull;
  auto Mix = [&H](std::string_view S) {
    for (char C : S)
      H = (H ^ static_cast<unsigned char>(C)) * 0x100000001B3ull;
    H = (H ^ 0xFF) * 0x100000001B3ull; // field separator
  };
  Mix(P.Name.str());
  Mix(P.Param.str());
  for (const Cmd &C : P.Body)
    Mix(C.toString());
  return H;
}

PathCondition gillian::summarySliceForArg(const PathCondition &Caller,
                                          const Expr &Arg) {
  if (Caller.size() == 0)
    return PathCondition();
  std::set<InternedString> ArgVars;
  Arg.collectLVars(ArgVars);
  if (ArgVars.empty())
    return PathCondition();

  std::vector<std::vector<Expr>> Groups = sliceConjunctsByVars(Caller);
  // Merge the argument-connected groups back in canonical order: each
  // group is a subsequence of the caller's canonical conjunct list, so an
  // ExprOrdering merge of whole groups reproduces a canonical list.
  std::vector<std::vector<Expr>> Keep;
  for (std::vector<Expr> &G : Groups) {
    bool Connected = false;
    for (const Expr &C : G) {
      std::set<InternedString> Vars;
      C.collectLVars(Vars);
      for (InternedString V : Vars)
        if (ArgVars.count(V)) {
          Connected = true;
          break;
        }
      if (Connected)
        break;
    }
    if (Connected)
      Keep.push_back(std::move(G));
  }
  if (Keep.empty())
    return PathCondition();
  if (Keep.size() == 1)
    return PathCondition::fromSortedConjuncts(std::move(Keep.front()));
  std::vector<Expr> Merged;
  ExprOrdering Lt;
  std::vector<size_t> Pos(Keep.size(), 0);
  for (;;) {
    int Best = -1;
    for (size_t G = 0; G < Keep.size(); ++G) {
      if (Pos[G] >= Keep[G].size())
        continue;
      if (Best < 0 || Lt(Keep[G][Pos[G]], Keep[Best][Pos[Best]]))
        Best = static_cast<int>(G);
    }
    if (Best < 0)
      break;
    Merged.push_back(Keep[Best][Pos[Best]++]);
  }
  return PathCondition::fromSortedConjuncts(std::move(Merged));
}

std::vector<Expr>
gillian::summaryNewConjuncts(const std::vector<Expr> &Before,
                             const std::vector<Expr> &After) {
  std::vector<Expr> Out;
  ExprOrdering Lt;
  size_t I = 0, J = 0;
  while (I < After.size()) {
    if (J < Before.size() && After[I] == Before[J]) {
      ++I;
      ++J;
      continue;
    }
    if (J < Before.size() && Lt(Before[J], After[I])) {
      ++J;
      continue;
    }
    Out.push_back(After[I]);
    ++I;
  }
  return Out;
}

size_t gillian::summaryEntryBytes(const SummaryEntry &E) {
  size_t B = sizeof(SummaryEntry);
  for (const SummaryNode &N : E.Nodes) {
    B += sizeof(SummaryNode);
    B += N.Cov.size() * sizeof(SummaryCovEvent);
    B += N.Batches.size() * sizeof(std::vector<Expr>);
    // Expressions are shared DAG nodes; count a flat estimate per handle.
    for (const std::vector<Expr> &Batch : N.Batches)
      B += Batch.size() * 64;
    if (N.Val)
      B += 64;
  }
  return B;
}

//===----------------------------------------------------------------------===//
// The sharded store
//===----------------------------------------------------------------------===//

namespace {
void publishGauges(const ProcedureSummaryStore &S) {
  obs::SummaryGlobalStats &G = obs::summaryGlobalStats();
  G.Entries.set(S.size());
  G.Bytes.set(S.bytes());
}
} // namespace

std::shared_ptr<const SummaryEntry>
ProcedureSummaryStore::lookup(const SummaryKey &K) const {
  Shard &Sh = shardFor(K.hash());
  std::lock_guard<std::mutex> Lock(Sh.M);
  auto It = Sh.Map.find(K);
  return It == Sh.Map.end() ? nullptr : It->second;
}

void ProcedureSummaryStore::insert(const SummaryKey &K,
                                   std::shared_ptr<const SummaryEntry> E) {
  size_t Added = E ? E->Bytes : 0;
  {
    Shard &Sh = shardFor(K.hash());
    std::lock_guard<std::mutex> Lock(Sh.M);
    std::shared_ptr<const SummaryEntry> &Slot = Sh.Map[K];
    if (Slot)
      BytesTotal.fetch_sub(Slot->Bytes, std::memory_order_relaxed);
    Slot = std::move(E);
    BytesTotal.fetch_add(Added, std::memory_order_relaxed);
  }
  publishGauges(*this);
}

void ProcedureSummaryStore::clear() {
  for (Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    Sh.Map.clear();
  }
  BytesTotal.store(0, std::memory_order_relaxed);
  Generation.fetch_add(1, std::memory_order_relaxed);
  publishGauges(*this);
}

size_t ProcedureSummaryStore::size() const {
  size_t N = 0;
  for (const Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    N += Sh.Map.size();
  }
  return N;
}

ProcedureSummaryStore &ProcedureSummaryStore::process() {
  static ProcedureSummaryStore S;
  // Solver::resetCache() colds every memoised layer; the summary store is
  // one of them. Registered lazily on first use of the process store.
  static bool Hooked = [] {
    registerCacheResetHook([] { ProcedureSummaryStore::process().clear(); });
    return true;
  }();
  (void)Hooked;
  return S;
}

void gillian::resetEngineCaches(Solver &S) {
  S.resetCache();
  // resetCache() already runs the registered hook when the process store
  // has been touched; clear again unconditionally so the guarantee does
  // not depend on hook installation order.
  ProcedureSummaryStore::process().clear();
}

//===----------------------------------------------------------------------===//
// Persistence — same crash-safe discipline as Solver::saveCache
//===----------------------------------------------------------------------===//

namespace {

char nodeKindChar(SummaryNodeKind K) {
  switch (K) {
  case SummaryNodeKind::Return:
    return 'R';
  case SummaryNodeKind::Error:
    return 'E';
  case SummaryNodeKind::Vanish:
    return 'V';
  case SummaryNodeKind::Split:
    return 'S';
  case SummaryNodeKind::Dead:
    return 'D';
  }
  return '?';
}

bool nodeKindFromChar(char C, SummaryNodeKind &K) {
  switch (C) {
  case 'R':
    K = SummaryNodeKind::Return;
    return true;
  case 'E':
    K = SummaryNodeKind::Error;
    return true;
  case 'V':
    K = SummaryNodeKind::Vanish;
    return true;
  case 'S':
    K = SummaryNodeKind::Split;
    return true;
  case 'D':
    K = SummaryNodeKind::Dead;
    return true;
  default:
    return false;
  }
}

void writeEntry(std::ostream &OS, const SummaryKey &K,
                const SummaryEntry &E) {
  char FpHex[17];
  std::snprintf(FpHex, sizeof(FpHex), "%016" PRIx64 "", E.Fingerprint);
  OS << "SUMMARY\t" << E.ProcName.str() << '\t' << FpHex << '\t'
     << (E.Negative ? 1 : 0) << '\t' << E.Nodes.size() << '\n';
  OS << "A\t" << K.Arg.toString() << '\n';
  // Slice conjuncts one per line, in their canonical order: the loader
  // rebuilds with fromSortedConjuncts, so the key round-trips bit-exactly
  // (re-canonicalising a rendered conjunction may not).
  OS << "P\t" << K.Slice.size() << '\n';
  for (const Expr &C : K.Slice.conjuncts())
    OS << "Q\t" << C.toString() << '\n';
  for (const SummaryNode &N : E.Nodes) {
    OS << "N\t" << nodeKindChar(N.Kind) << '\t' << N.Cmds << '\t'
       << N.FalseChild << '\t' << N.TrueChild << '\t';
    if (N.Cov.empty())
      OS << '-';
    else
      for (size_t I = 0; I < N.Cov.size(); ++I)
        OS << (I ? "," : "") << N.Cov[I].CmdIdx << ':' << N.Cov[I].Bits
           << ':' << N.Cov[I].CmdsAt;
    OS << '\t' << N.Batches.size() << '\t'
       << (N.Val ? N.Val.toString() : std::string("-")) << '\n';
    for (const std::vector<Expr> &Batch : N.Batches) {
      OS << "B\t" << Batch.size() << '\n';
      for (const Expr &C : Batch)
        OS << "C\t" << C.toString() << '\n';
    }
  }
}

std::vector<std::string> splitTabs(const std::string &Line, size_t MaxParts) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (Parts.size() + 1 < MaxParts) {
    size_t Tab = Line.find('\t', Start);
    if (Tab == std::string::npos)
      break;
    Parts.push_back(Line.substr(Start, Tab - Start));
    Start = Tab + 1;
  }
  Parts.push_back(Line.substr(Start));
  return Parts;
}

/// Parses one entry starting at the SUMMARY line \p Header; reads follow-up
/// lines from \p In. Returns false on malformed input (the caller resyncs
/// on the next SUMMARY header left in \p Pending).
bool readEntry(std::istream &In, const std::string &Header, SummaryKey &K,
               SummaryEntry &E, std::string &Pending) {
  Pending.clear();
  std::vector<std::string> H = splitTabs(Header, 5);
  if (H.size() != 5 || H[0] != "SUMMARY")
    return false;
  E.ProcName = InternedString::get(H[1]);
  char *End = nullptr;
  E.Fingerprint = std::strtoull(H[2].c_str(), &End, 16);
  if (!End || *End)
    return false;
  E.Negative = H[3] == "1";
  unsigned long NodeCount = std::strtoul(H[4].c_str(), &End, 10);
  if (!End || *End || NodeCount > 1u << 20)
    return false;

  std::string Line;
  if (!std::getline(In, Line) || Line.rfind("A\t", 0) != 0)
    return false;
  Result<Expr> Arg = parseGilExpr(Line.substr(2));
  if (!Arg)
    return false;
  K.Arg = Arg.take();
  if (!std::getline(In, Line) || Line.rfind("P\t", 0) != 0)
    return false;
  unsigned long NSlice = std::strtoul(Line.c_str() + 2, &End, 10);
  if (!End || *End || NSlice > 1u << 20)
    return false;
  std::vector<Expr> SliceConjuncts;
  SliceConjuncts.reserve(NSlice);
  for (unsigned long SI = 0; SI < NSlice; ++SI) {
    if (!std::getline(In, Line) || Line.rfind("Q\t", 0) != 0)
      return false;
    Result<Expr> C = parseGilExpr(Line.substr(2));
    if (!C)
      return false;
    SliceConjuncts.push_back(C.take());
  }
  // The saved conjuncts are the slice's canonical list in order:
  // fromSortedConjuncts reproduces the exact runtime key.
  K.Slice = PathCondition::fromSortedConjuncts(std::move(SliceConjuncts));
  K.Fingerprint = E.Fingerprint;

  E.Nodes.reserve(NodeCount);
  for (unsigned long NI = 0; NI < NodeCount; ++NI) {
    if (!std::getline(In, Line))
      return false;
    if (Line.rfind("N\t", 0) != 0) {
      if (Line.rfind("SUMMARY\t", 0) == 0)
        Pending = Line;
      return false;
    }
    std::vector<std::string> F = splitTabs(Line, 8);
    if (F.size() != 8 || F[1].size() != 1)
      return false;
    SummaryNode N;
    if (!nodeKindFromChar(F[1][0], N.Kind))
      return false;
    N.Cmds = std::strtoull(F[2].c_str(), &End, 10);
    if (!End || *End)
      return false;
    N.FalseChild = static_cast<uint32_t>(std::strtoul(F[3].c_str(), &End, 10));
    if (!End || *End)
      return false;
    N.TrueChild = static_cast<uint32_t>(std::strtoul(F[4].c_str(), &End, 10));
    if (!End || *End)
      return false;
    if (F[5] != "-") {
      std::istringstream CovIn(F[5]);
      std::string Ev;
      while (std::getline(CovIn, Ev, ',')) {
        size_t Colon = Ev.find(':');
        size_t Colon2 =
            Colon == std::string::npos ? Colon : Ev.find(':', Colon + 1);
        if (Colon == std::string::npos || Colon2 == std::string::npos)
          return false;
        SummaryCovEvent CE;
        CE.CmdIdx = static_cast<uint32_t>(
            std::strtoul(Ev.substr(0, Colon).c_str(), &End, 10));
        if (!End || *End)
          return false;
        CE.Bits = static_cast<uint32_t>(std::strtoul(
            Ev.substr(Colon + 1, Colon2 - Colon - 1).c_str(), &End, 10));
        if (!End || *End)
          return false;
        CE.CmdsAt = std::strtoull(Ev.substr(Colon2 + 1).c_str(), &End, 10);
        if (!End || *End)
          return false;
        N.Cov.push_back(CE);
      }
    }
    unsigned long NBatches = std::strtoul(F[6].c_str(), &End, 10);
    if (!End || *End || NBatches > 1u << 20)
      return false;
    if (F[7] != "-") {
      Result<Expr> Val = parseGilExpr(F[7]);
      if (!Val)
        return false;
      N.Val = Val.take();
    }
    N.Batches.reserve(NBatches);
    for (unsigned long BI = 0; BI < NBatches; ++BI) {
      if (!std::getline(In, Line))
        return false;
      if (Line.rfind("B\t", 0) != 0) {
        if (Line.rfind("SUMMARY\t", 0) == 0)
          Pending = Line;
        return false;
      }
      unsigned long NConj = std::strtoul(Line.c_str() + 2, &End, 10);
      if (!End || *End || NConj > 1u << 20)
        return false;
      std::vector<Expr> Batch;
      Batch.reserve(NConj);
      for (unsigned long CI = 0; CI < NConj; ++CI) {
        if (!std::getline(In, Line))
          return false;
        if (Line.rfind("C\t", 0) != 0) {
          if (Line.rfind("SUMMARY\t", 0) == 0)
            Pending = Line;
          return false;
        }
        Result<Expr> C = parseGilExpr(Line.substr(2));
        if (!C)
          return false;
        Batch.push_back(C.take());
      }
      N.Batches.push_back(std::move(Batch));
    }
    E.Nodes.push_back(std::move(N));
  }

  // Structural validation: a usable tree with in-range children, every
  // node carrying its branch-in batch (batch 0 — replay reads it at the
  // parent split).
  if (!E.Negative && E.Nodes.empty())
    return false;
  for (const SummaryNode &N : E.Nodes) {
    if (!E.Nodes.empty() && N.Batches.empty())
      return false;
    if (N.Kind == SummaryNodeKind::Split &&
        (N.FalseChild >= E.Nodes.size() || N.TrueChild >= E.Nodes.size()))
      return false;
  }
  E.Outcomes = 0;
  for (const SummaryNode &N : E.Nodes)
    if (N.Kind == SummaryNodeKind::Return ||
        N.Kind == SummaryNodeKind::Error ||
        N.Kind == SummaryNodeKind::Vanish)
      ++E.Outcomes;
  E.Bytes = summaryEntryBytes(E);
  return true;
}

} // namespace

long ProcedureSummaryStore::save(const std::string &Path) const {
  const std::string Tmp =
      Path + "." + std::to_string(::getpid()) + ".tmp";
  long Written = 0;
  {
    std::ofstream OS(Tmp, std::ios::trunc);
    if (!OS)
      return -1;
    for (const Shard &Sh : Shards) {
      std::lock_guard<std::mutex> Lock(Sh.M);
      for (const auto &[K, E] : Sh.Map) {
        if (!E)
          continue;
        writeEntry(OS, K, *E);
        ++Written;
      }
    }
    OS.flush();
    if (!OS) {
      std::remove(Tmp.c_str());
      return -1;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return -1;
  }
  return Written;
}

long ProcedureSummaryStore::load(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return -1;
  long Loaded = 0;
  std::string Line;
  bool HaveLine = static_cast<bool>(std::getline(In, Line));
  while (HaveLine) {
    if (Line.rfind("SUMMARY\t", 0) != 0) {
      HaveLine = static_cast<bool>(std::getline(In, Line));
      continue;
    }
    SummaryKey K;
    auto E = std::make_shared<SummaryEntry>();
    std::string Pending;
    if (readEntry(In, Line, K, *E, Pending)) {
      insert(K, std::move(E));
      ++Loaded;
      HaveLine = static_cast<bool>(std::getline(In, Line));
    } else if (!Pending.empty()) {
      Line = Pending; // resync on the next header we already consumed
    } else {
      HaveLine = static_cast<bool>(std::getline(In, Line));
    }
  }
  publishGauges(*this);
  return Loaded;
}
