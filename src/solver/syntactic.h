//===- solver/syntactic.h - Syntactic satisfiability core ------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cheap, sound-for-UNSAT satisfiability core that handles the bulk of
/// the path conditions symbolic execution produces, without an SMT call:
///
///  * equality reasoning: union-find over logical variables, literals and
///    opaque terms, with literal-conflict detection;
///  * disequalities checked against the equality classes;
///  * integer interval propagation for `x < c`-shaped conjuncts;
///  * type conflicts via the shared type-inference pass.
///
/// It never answers Sat — only Unsat (proved) or Unknown — and can propose
/// candidate models that the caller verifies by evaluation, so its answers
/// are trustworthy even though it is incomplete.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_SYNTACTIC_H
#define GILLIAN_SOLVER_SYNTACTIC_H

#include "solver/model.h"
#include "solver/path_condition.h"
#include "solver/type_infer.h"

#include <optional>
#include <vector>

namespace gillian {

enum class SatResult : uint8_t {
  Sat,
  Unsat,
  Unknown,
};

std::string_view satResultName(SatResult R);

/// Checks \p PC syntactically. Returns Unsat only on a proof; Unknown
/// otherwise (callers treat Unknown as possibly-Sat).
SatResult checkSatSyntactic(const PathCondition &PC);

/// Proposes a model for \p PC from the syntactic analysis (equality-class
/// representatives, interval bounds, typed defaults). The result is only a
/// *candidate*: callers must verify it with Model::satisfies before use.
/// Returns nullopt when the analysis found a contradiction.
std::optional<Model> proposeModelSyntactic(const PathCondition &PC);

/// Partitions the conjuncts of \p PC into variable-connected components
/// (union-find over free logical variables): two conjuncts land in the
/// same group iff they are linked by a chain of shared logical variables.
/// Conjuncts mentioning no logical variable are gathered into one ground
/// group. Groups preserve the canonical conjunct order of \p PC, so each
/// group is itself a canonical (sorted, deduplicated) conjunct list.
///
/// Because groups share no logical variables, they are independently
/// satisfiable: the conjunction is Unsat iff some group is Unsat, and Sat
/// if every group is Sat — the property the solver's slicing cache layer
/// relies on.
std::vector<std::vector<Expr>> sliceConjunctsByVars(const PathCondition &PC);

} // namespace gillian

#endif // GILLIAN_SOLVER_SYNTACTIC_H
