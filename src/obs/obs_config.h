//===- obs/obs_config.h - Observability runtime switches -------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide switches for the observability core (DESIGN.md §4c). Every
/// instrumentation site is gated either at compile time (the
/// GILLIAN_OBS_NO_TRACE macro compiles the flight recorder's record sites
/// to empty inline functions) or behind one relaxed atomic-bool load, so
/// the disabled configuration costs at most a predictable-branch per site
/// (the ≤2% bench budget of the acceptance criteria).
///
/// Defaults match the pre-obs engine: layer timing on (the engine always
/// kept EngineNs/SolverNs-style stopwatches), per-action counters on
/// (one sharded-map increment per memory action, noise next to the action
/// itself), event tracing off (enabled explicitly, e.g. by a bench
/// driver's --trace-out flag), and the fine-grained per-step / per-simplify
/// spans off (two clock reads per GIL command would not fit the budget).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_OBS_CONFIG_H
#define GILLIAN_OBS_OBS_CONFIG_H

#include <atomic>
#include <cstddef>

namespace gillian::obs {

/// A value snapshot of every switch; apply with ObsConfig::set().
struct ObsOptions {
  /// RAII layer spans (engine / solver layers) accumulate wall time.
  bool Timing = true;
  /// Per-step and per-simplify spans: precise but hot (two steady_clock
  /// reads per GIL command / per simplification). Off by default.
  bool DetailedSpans = false;
  /// The flight recorder: structured events into per-thread rings.
  bool Trace = false;
  /// Capacity (events) of each per-thread trace ring; rounded up to a
  /// power of two. Oldest events are overwritten on wrap.
  size_t TraceRingCapacity = 1 << 12;
  /// Per-action counters in the symbolic memory models.
  bool ActionCounters = true;
  /// Target-program branch coverage (per-IfGoto outcome masks).
  bool Coverage = true;
};

/// Global switch registry. Reads are single relaxed atomic loads and are
/// safe from any thread; set() is intended for startup / bench
/// configuration points, not for toggling mid-exploration.
class ObsConfig {
public:
  static bool timing() { return S().Timing.load(std::memory_order_relaxed); }
  static bool detailedSpans() {
    return S().DetailedSpans.load(std::memory_order_relaxed);
  }
  static bool trace() { return S().Trace.load(std::memory_order_relaxed); }
  static bool actionCounters() {
    return S().ActionCounters.load(std::memory_order_relaxed);
  }
  static bool coverage() {
    return S().Coverage.load(std::memory_order_relaxed);
  }
  static size_t traceRingCapacity() {
    return S().TraceRingCapacity.load(std::memory_order_relaxed);
  }

  static void set(const ObsOptions &O);
  /// Flips only the tracing switch (used by TraceRecorder::enable /
  /// disable without clobbering the other options).
  static void setTrace(bool On) {
    S().Trace.store(On, std::memory_order_relaxed);
  }
  /// Flips only the detailed-spans switch.
  static void setDetailedSpans(bool On) {
    S().DetailedSpans.store(On, std::memory_order_relaxed);
  }
  /// Current values as an ObsOptions snapshot.
  static ObsOptions get();

private:
  struct State {
    std::atomic<bool> Timing{true};
    std::atomic<bool> DetailedSpans{false};
    std::atomic<bool> Trace{false};
    std::atomic<bool> ActionCounters{true};
    std::atomic<bool> Coverage{true};
    std::atomic<size_t> TraceRingCapacity{1 << 12};
  };
  static State &S();
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_OBS_CONFIG_H
