file(REMOVE_RECURSE
  "libgillian_gil.a"
)
