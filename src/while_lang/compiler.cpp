//===- while_lang/compiler.cpp --------------------------------------------===//

#include "while_lang/compiler.h"

#include "while_lang/parser.h"

using namespace gillian;
using namespace gillian::whilelang;

InternedString gillian::whilelang::actLookup() {
  return InternedString::get("lookup");
}
InternedString gillian::whilelang::actMutate() {
  return InternedString::get("mutate");
}
InternedString gillian::whilelang::actDispose() {
  return InternedString::get("dispose");
}

namespace {

/// Per-program compilation state: emits commands and allocates fresh
/// sites/temporaries.
class Compiler {
public:
  Result<Prog> run(const Program &P) {
    Prog Out;
    for (const FuncDecl &F : P.Funcs) {
      Result<Proc> R = compileFunc(F);
      if (!R)
        return Err(R.error());
      Out.add(R.take());
    }
    return Out;
  }

private:
  uint32_t NextSite = 0;
  uint32_t NextTemp = 0;
  std::vector<Cmd> Body;

  InternedString freshTemp() {
    return InternedString::get("_t" + std::to_string(NextTemp++));
  }

  size_t pc() const { return Body.size(); }
  void emit(Cmd C) { Body.push_back(std::move(C)); }

  /// Emits explicit fault guards for partial operators in \p E (division
  /// and modulo by a possibly-zero divisor). GIL symbolic evaluation
  /// defers expression faults, so the front end must turn its language's
  /// runtime errors into explicit control flow — the same division of
  /// labour CompCert-style compilation uses for C undefined behaviour.
  void emitPartialOpGuards(const Expr &E) {
    if (!E)
      return;
    for (size_t I = 0, N = E.numChildren(); I != N; ++I)
      emitPartialOpGuards(E.child(I));
    if (E.kind() != ExprKind::BinOp)
      return;
    BinOpKind Op = E.binOpKind();
    if (Op != BinOpKind::Div && Op != BinOpKind::Mod)
      return;
    const Expr &Rhs = E.child(1);
    if (Rhs.isLit() && Rhs.litValue().isNumeric()) {
      if (!(Rhs.litValue().isInt() && Rhs.litValue().asInt() == 0))
        return; // nonzero literal divisor: total
    }
    // Only integer division faults; `to_num`-typed divisors are IEEE.
    size_t Here = pc();
    emit(Cmd::ifGoto(Expr::notE(Expr::andE(
                         Expr::hasType(Rhs, GilType::Int),
                         Expr::eq(Rhs, Expr::intE(0)))),
                     Here + 2));
    emit(Cmd::fail(Expr::strE("runtime error: division by zero")));
  }

  /// Guards every expression a statement evaluates.
  void guardExprs(std::initializer_list<const Expr *> Es) {
    for (const Expr *E : Es)
      if (E && *E)
        emitPartialOpGuards(*E);
  }

  Result<Proc> compileFunc(const FuncDecl &F) {
    Body.clear();
    Proc P;
    P.Name = F.Name;
    P.Param = InternedString::get("_args");
    // Destructuring prologue: x_k := l_nth(_args, k).
    for (size_t K = 0; K != F.Params.size(); ++K)
      emit(Cmd::assign(F.Params[K],
                       Expr::binOp(BinOpKind::ListNth,
                                   Expr::pvar(P.Param),
                                   Expr::intE(static_cast<int64_t>(K)))));
    for (const Stmt &S : F.Body) {
      Result<bool> R = compileStmt(S);
      if (!R)
        return Err(R.error());
    }
    // Implicit `return 0` for functions that fall off the end.
    emit(Cmd::ret(Expr::intE(0)));
    P.Body = std::move(Body);
    Body.clear();
    return P;
  }

  Result<bool> compileBlock(const std::vector<Stmt> &Stmts) {
    for (const Stmt &S : Stmts) {
      Result<bool> R = compileStmt(S);
      if (!R)
        return R;
    }
    return true;
  }

  Result<bool> compileStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Assign:
      // [Assignment]: direct GIL assignment.
      guardExprs({&S.E});
      emit(Cmd::assign(S.X, S.E));
      return true;

    case StmtKind::Assume: {
      // [Assume]: ifgoto e (pc+2); vanish.
      guardExprs({&S.E});
      size_t Here = pc();
      emit(Cmd::ifGoto(S.E, Here + 2));
      emit(Cmd::vanish());
      return true;
    }

    case StmtKind::Assert: {
      // [Assert]: ifgoto e (pc+2); fail e.
      guardExprs({&S.E});
      size_t Here = pc();
      emit(Cmd::ifGoto(S.E, Here + 2));
      emit(Cmd::fail(Expr::strE("assertion failure: " + S.E.toString())));
      return true;
    }

    case StmtKind::New: {
      // [New]: x := uSym_j; then one mutate per property.
      for (const auto &[P, E] : S.Props)
        emitPartialOpGuards(E);
      emit(Cmd::uSym(S.X, NextSite++));
      for (const auto &[P, E] : S.Props)
        emit(Cmd::action(freshTemp(), actMutate(),
                         Expr::list({Expr::pvar(S.X),
                                     Expr::strE(P.str()), E})));
      return true;
    }

    case StmtKind::Lookup:
      // [Lookup]: x := lookup([e, p]).
      guardExprs({&S.E});
      emit(Cmd::action(S.X, actLookup(),
                       Expr::list({S.E, Expr::strE(S.Prop.str())})));
      return true;

    case StmtKind::Mutate:
      guardExprs({&S.E, &S.E2});
      emit(Cmd::action(freshTemp(), actMutate(),
                       Expr::list({S.E, Expr::strE(S.Prop.str()), S.E2})));
      return true;

    case StmtKind::Dispose:
      guardExprs({&S.E});
      emit(Cmd::action(freshTemp(), actDispose(), Expr::list({S.E})));
      return true;

    case StmtKind::Return:
      guardExprs({&S.E});
      emit(Cmd::ret(S.E));
      return true;

    case StmtKind::Call: {
      // x := f(ē): static call, arguments packed into a GIL list.
      for (const Expr &A : S.Args)
        emitPartialOpGuards(A);
      emit(Cmd::call(S.X, Expr::strE(S.Callee.str()),
                     Expr::list(S.Args)));
      return true;
    }

    case StmtKind::Fresh: {
      // x := iSym_j, plus a typing assumption when a typed fresh_T() was
      // used.
      emit(Cmd::iSym(S.X, NextSite++));
      if (S.FreshType) {
        Expr C = Expr::hasType(Expr::pvar(S.X), *S.FreshType);
        size_t Here = pc();
        emit(Cmd::ifGoto(C, Here + 2));
        emit(Cmd::vanish());
      }
      return true;
    }

    case StmtKind::If: {
      // ifgoto c THEN; (else); goto END; (then); END:
      guardExprs({&S.E});
      size_t CondIdx = pc();
      emit(Cmd::ifGoto(S.E, 0)); // patched below: target = else-skip
      Result<bool> E1 = compileBlock(S.Else);
      if (!E1)
        return E1;
      size_t GotoEndIdx = pc();
      emit(Cmd::ifGoto(Expr::boolE(true), 0)); // patched: END
      Body[CondIdx].Target = pc();
      Result<bool> T1 = compileBlock(S.Then);
      if (!T1)
        return T1;
      Body[GotoEndIdx].Target = pc();
      return true;
    }

    case StmtKind::While: {
      // LOOP: (guards); ifgoto c BODY; goto END; BODY: ...; goto LOOP;
      // END:  — the back edge re-enters at the guards so a faulting
      // condition faults on every iteration, as in the source semantics.
      size_t Loop = pc();
      guardExprs({&S.E});
      size_t CondIdx = pc();
      emit(Cmd::ifGoto(S.E, CondIdx + 2));
      size_t GotoEndIdx = pc();
      emit(Cmd::ifGoto(Expr::boolE(true), 0)); // patched: END
      Result<bool> B = compileBlock(S.Then);
      if (!B)
        return B;
      emit(Cmd::ifGoto(Expr::boolE(true), Loop));
      Body[GotoEndIdx].Target = pc();
      return true;
    }
    }
    return Err("unknown While statement kind");
  }
};

} // namespace

Result<Prog> gillian::whilelang::compileWhile(const Program &P) {
  return Compiler().run(P);
}

Result<Prog> gillian::whilelang::compileWhileSource(std::string_view Source) {
  Result<Program> P = parseWhile(Source);
  if (!P)
    return Err("While parse error: " + P.error());
  return compileWhile(*P);
}
