//===- obs/introspect/http_server.cpp -------------------------------------===//

#include "obs/introspect/http_server.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace gillian::obs;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string toLower(std::string_view S) {
  std::string Out(S);
  std::transform(Out.begin(), Out.end(), Out.begin(), [](unsigned char C) {
    return static_cast<char>(std::tolower(C));
  });
  return Out;
}

std::string_view trim(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t'))
    S.remove_prefix(1);
  while (!S.empty() && (S.back() == ' ' || S.back() == '\t' ||
                        S.back() == '\r'))
    S.remove_suffix(1);
  return S;
}

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

const char *statusText(int Status) {
  switch (Status) {
  case 200: return "OK";
  case 400: return "Bad Request";
  case 404: return "Not Found";
  case 405: return "Method Not Allowed";
  default: return "Error";
  }
}

} // namespace

std::string_view HttpRequest::header(std::string_view Key) const {
  for (const auto &[K, V] : Headers)
    if (K == Key)
      return V;
  return {};
}

bool gillian::obs::parseHttpRequest(std::string_view Raw, HttpRequest &Out) {
  Out = HttpRequest();
  if (Raw.find('\0') != std::string_view::npos)
    return false;

  // Request line.
  size_t LineEnd = Raw.find('\n');
  if (LineEnd == std::string_view::npos)
    return false;
  std::string_view Line = trim(Raw.substr(0, LineEnd));
  size_t Sp1 = Line.find(' ');
  if (Sp1 == std::string_view::npos || Sp1 == 0)
    return false;
  size_t Sp2 = Line.rfind(' ');
  if (Sp2 == Sp1) // only two tokens
    return false;
  Out.Method = std::string(Line.substr(0, Sp1));
  std::string_view Target = trim(Line.substr(Sp1 + 1, Sp2 - Sp1 - 1));
  Out.Version = std::string(trim(Line.substr(Sp2 + 1)));
  if (Target.empty() || Target.find(' ') != std::string_view::npos)
    return false;
  if (Out.Version.rfind("HTTP/", 0) != 0)
    return false;
  size_t Q = Target.find('?');
  if (Q == std::string_view::npos) {
    Out.Target = std::string(Target);
  } else {
    Out.Target = std::string(Target.substr(0, Q));
    Out.Query = std::string(Target.substr(Q + 1));
  }

  // Headers until the blank line.
  size_t Pos = LineEnd + 1;
  bool SawEnd = false;
  while (Pos < Raw.size()) {
    size_t End = Raw.find('\n', Pos);
    if (End == std::string_view::npos)
      return false; // terminating blank line never arrived
    std::string_view H = Raw.substr(Pos, End - Pos);
    Pos = End + 1;
    if (trim(H).empty()) {
      SawEnd = true;
      break; // end of headers
    }
    size_t Colon = H.find(':');
    if (Colon == std::string_view::npos || Colon == 0)
      return false;
    std::string Key = toLower(trim(H.substr(0, Colon)));
    if (Key.find(' ') != std::string::npos)
      return false; // "Bad Header : x" — obs-fold / smuggling shapes
    Out.Headers.emplace_back(std::move(Key),
                             std::string(trim(H.substr(Colon + 1))));
  }
  if (!SawEnd)
    return false;

  // No bodies in this protocol: a request advertising one is malformed.
  std::string_view CL = Out.header("content-length");
  if (!CL.empty() && CL != "0")
    return false;
  if (!Out.header("transfer-encoding").empty())
    return false;

  std::string ConnVal = toLower(Out.header("connection"));
  if (Out.Version == "HTTP/1.1")
    Out.KeepAlive = ConnVal.find("close") == std::string::npos;
  else
    Out.KeepAlive = ConnVal.find("keep-alive") != std::string::npos;
  return true;
}

namespace {
std::string renderResponse(const HttpResponse &R, bool KeepAlive) {
  std::string Out;
  Out.reserve(R.Body.size() + 160);
  Out += "HTTP/1.1 ";
  Out += std::to_string(R.Status);
  Out += ' ';
  Out += statusText(R.Status);
  Out += "\r\nContent-Type: ";
  Out += R.ContentType;
  Out += "\r\nContent-Length: ";
  Out += std::to_string(R.Body.size());
  Out += "\r\nConnection: ";
  Out += KeepAlive ? "keep-alive" : "close";
  Out += "\r\n\r\n";
  Out += R.Body;
  return Out;
}

/// Writes the whole buffer, riding out EAGAIN with a short poll; a client
/// that stops reading for >2s forfeits the response.
bool writeAll(int Fd, std::string_view Buf) {
  size_t Off = 0;
  int SpinsLeft = 200; // 200 * 10ms = 2s budget
  while (Off < Buf.size()) {
    ssize_t N = ::send(Fd, Buf.data() + Off, Buf.size() - Off, MSG_NOSIGNAL);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (--SpinsLeft <= 0)
        return false;
      pollfd P{Fd, POLLOUT, 0};
      ::poll(&P, 1, 10);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}
} // namespace

struct HttpServer::Conn {
  int Fd = -1;
  std::string Buf; ///< bytes read but not yet parsed
};

uint16_t HttpServer::start(const std::string &Host, uint16_t Port,
                           Handler H) {
  if (Running.load(std::memory_order_acquire))
    return 0;

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
    return 0;

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return 0;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 16) != 0 || !setNonBlocking(Fd)) {
    ::close(Fd);
    return 0;
  }

  // Recover the actually-bound port (Port may have been 0 = ephemeral).
  sockaddr_in Bound{};
  socklen_t Len = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) != 0) {
    ::close(Fd);
    return 0;
  }

  if (::pipe(WakePipe) != 0) {
    ::close(Fd);
    return 0;
  }
  setNonBlocking(WakePipe[0]);
  setNonBlocking(WakePipe[1]);

  ListenFd = Fd;
  BoundPort = ntohs(Bound.sin_port);
  Handle = std::move(H);
  Served.store(0, std::memory_order_relaxed);
  LastRequestNs.store(0, std::memory_order_relaxed);
  Running.store(true, std::memory_order_release);
  Thread = std::thread([this] { serveLoop(); });
  return BoundPort;
}

void HttpServer::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel)) {
    if (Thread.joinable())
      Thread.join();
    return;
  }
  char B = 1;
  [[maybe_unused]] ssize_t N = ::write(WakePipe[1], &B, 1);
  if (Thread.joinable())
    Thread.join();
  if (ListenFd >= 0)
    ::close(ListenFd);
  for (int &P : WakePipe)
    if (P >= 0)
      ::close(P);
  ListenFd = -1;
  WakePipe[0] = WakePipe[1] = -1;
  BoundPort = 0;
}

bool HttpServer::handleReadable(Conn &C) {
  char Tmp[4096];
  for (;;) {
    ssize_t N = ::recv(C.Fd, Tmp, sizeof(Tmp), 0);
    if (N > 0) {
      C.Buf.append(Tmp, static_cast<size_t>(N));
      if (C.Buf.size() > 64 * 1024)
        return false; // nobody sends 64 KiB of GET; drop the connection
      continue;
    }
    if (N == 0)
      return false; // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    return false;
  }

  // Serve every complete request currently buffered.
  for (;;) {
    size_t HdrEnd = C.Buf.find("\r\n\r\n");
    size_t Skip = 4;
    if (HdrEnd == std::string::npos) {
      HdrEnd = C.Buf.find("\n\n"); // bare-LF tolerance
      Skip = 2;
    }
    if (HdrEnd == std::string::npos)
      return true; // need more bytes

    std::string RawReq = C.Buf.substr(0, HdrEnd + Skip);
    C.Buf.erase(0, HdrEnd + Skip);

    HttpRequest Req;
    HttpResponse Resp;
    bool KeepAlive = false;
    if (!parseHttpRequest(RawReq, Req)) {
      Resp.Status = 400;
      Resp.Body = "bad request\n";
    } else if (Req.Method != "GET" && Req.Method != "HEAD") {
      Resp.Status = 405;
      Resp.Body = "method not allowed\n";
      KeepAlive = Req.KeepAlive;
    } else {
      Resp = Handle(Req);
      KeepAlive = Req.KeepAlive;
      if (Req.Method == "HEAD")
        Resp.Body.clear();
    }

    Served.fetch_add(1, std::memory_order_relaxed);
    LastRequestNs.store(nowNs(), std::memory_order_relaxed);
    if (!writeAll(C.Fd, renderResponse(Resp, KeepAlive)))
      return false;
    if (!KeepAlive || Resp.Status == 400)
      return false;
  }
}

void HttpServer::serveLoop() {
  std::vector<Conn> Conns;
  std::vector<pollfd> Pfds;

  while (Running.load(std::memory_order_acquire)) {
    Pfds.clear();
    Pfds.push_back({WakePipe[0], POLLIN, 0});
    Pfds.push_back({ListenFd, POLLIN, 0});
    for (const Conn &C : Conns)
      Pfds.push_back({C.Fd, POLLIN, 0});

    int N = ::poll(Pfds.data(), Pfds.size(), 500);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (!Running.load(std::memory_order_acquire))
      break;

    if (Pfds[1].revents & POLLIN) {
      for (;;) {
        int Fd = ::accept(ListenFd, nullptr, nullptr);
        if (Fd < 0)
          break;
        if (!setNonBlocking(Fd) || Conns.size() >= 64) {
          ::close(Fd); // cap concurrent connections; scrapers reconnect
          continue;
        }
        int One = 1;
        ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
        Conns.push_back(Conn{Fd, {}});
      }
    }

    // Walk connection pollfds (offset 2) back to front so erase is safe.
    for (size_t I = Pfds.size(); I-- > 2;) {
      if (!(Pfds[I].revents & (POLLIN | POLLERR | POLLHUP)))
        continue;
      Conn &C = Conns[I - 2];
      bool Keep = (Pfds[I].revents & POLLIN) && handleReadable(C);
      if (!Keep) {
        ::close(C.Fd);
        Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I - 2));
      }
    }
  }

  for (Conn &C : Conns)
    ::close(C.Fd);
}
