//===- obs/exporters.h - Trace and stats exporters -------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two exporters of the observability core (DESIGN.md §4c):
///
///  * chromeTraceJson — renders drained flight-recorder events as a
///    chrome://tracing / Perfetto-compatible Trace Event JSON document
///    (`{"traceEvents":[...]}`): span begin/end become "B"/"E" duration
///    events nested per thread, everything else becomes an instant event
///    with its payload in "args".
///
///  * obsStatsJson — the unified stats object: span table (per-layer
///    total/self wall time), per-language action counters, and the
///    scheduler counters, in one registry-driven JSON object. Counter
///    sets (ExecStats, SolverStats) emit themselves via
///    CounterSet::countersJson() and are spliced in by the caller, so no
///    layer hand-maintains a field list.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_EXPORTERS_H
#define GILLIAN_OBS_EXPORTERS_H

#include "obs/span.h"
#include "obs/trace_ring.h"

#include <string>
#include <vector>

namespace gillian::obs {

/// Renders \p Events as a Trace Event Format JSON document. Span events
/// are emitted as "B"/"E" pairs (chrome matches them per tid and draws
/// the nesting); unbalanced ends at the start of a drained ring — the
/// wrap ate their begin — are dropped so the document always parses and
/// nests.
std::string chromeTraceJson(const std::vector<TraceEvent> &Events);

/// Drains the global recorder and writes the chrome trace to \p Path.
/// Returns false (and leaves no partial file behind) on I/O failure.
bool writeChromeTrace(const std::string &Path);

/// GILLIAN_TRACE_OUT=path: enables the flight recorder now and registers
/// an atexit writer for the chrome trace — the env-var twin of the bench
/// drivers' --trace-out=, for processes without a CLI (ctest suite runs,
/// like GILLIAN_SERVE / GILLIAN_STRATEGY). Checked once per process.
void maybeEnableEnvTrace();

/// The unified observability object: {"spans":{...},"actions":{...},
/// "scheduler":{...}}. \p Spans is typically a delta between two
/// SpanTable snapshots (one bench row) or a full snapshot (whole run).
std::string obsStatsJson(const SpanSnapshot &Spans);

} // namespace gillian::obs

#endif // GILLIAN_OBS_EXPORTERS_H
