//===- solver/native/native_session.cpp -----------------------------------===//

#include "solver/native/native_session.h"

#include "solver/native/clause_store.h"
#include "solver/native/equality_core.h"
#include "solver/solver.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

using namespace gillian;
using namespace gillian::native;

namespace {
/// Search effort cap (decisions + conflicts per query). The boolean
/// skeleton of a path condition is conjunction-heavy — most queries finish
/// in one propagation pass — so the cap only guards degenerate
/// disjunction-rich inputs, which answer Unknown and fall through to Z3.
constexpr size_t SearchBudget = 50000;
/// Candidate-value attempts per equivalence class during model building.
constexpr int ModelAttempts = 64;
} // namespace

//===----------------------------------------------------------------------===//
// NativeSession::Impl
//===----------------------------------------------------------------------===//

struct NativeSession::Impl {
  /// Per-boolean-variable atom payload. Aux (Tseitin) variables have a
  /// null expression; equality atoms carry the two interned sides.
  struct AtomInfo {
    Expr E;
    TermId L = InvalidTerm, R = InvalidTerm;
  };

  struct Frame {
    std::vector<Expr> Conjuncts; ///< delta slice of the canonical order
    ClauseStore::Mark CMark;
    size_t EqMark = 0;
    std::vector<Expr> NewAtoms; ///< AtomVar keys to drop on pop
    bool Conflicted = false;    ///< conflict while asserting (query Unsat)
    bool Dropped = false;       ///< some conjunct did not translate
  };

  ClauseStore CS;
  EqualityCore EC;
  std::unordered_map<Expr, BVar> AtomVar;
  std::vector<AtomInfo> Atoms; ///< indexed by BVar
  std::vector<Frame> Frames;
  size_t Asserted = 0;   ///< conjuncts covered by live frames
  size_t TheoryHead = 0; ///< trail prefix already applied to EC
  Lit TrueLit = 0;
  Frame *CurFrame = nullptr; ///< frame being asserted (atom bookkeeping)
  bool AssertConflict = false;

  Impl() { init(); }

  void init() {
    // A constant-true variable at trail position 0 — before any frame
    // mark, so no pop ever unassigns it. Boolean literal leaves map to it.
    BVar TV = CS.newVar();
    Atoms.push_back({});
    TrueLit = mkLit(TV);
    CS.enqueue(TrueLit);
    CS.propagate();
    TheoryHead = CS.trail().size();
  }

  void rollbackTo(size_t TrailN, size_t EqM) {
    CS.shrinkTrailTo(TrailN);
    if (TheoryHead > TrailN)
      TheoryHead = TrailN;
    EC.undoTo(EqM);
  }

  /// Applies equality atoms assigned since the last sync to the equality
  /// core. False on theory conflict (caller rolls back).
  bool applyTheory() {
    const std::vector<Lit> &T = CS.trail();
    while (TheoryHead < T.size()) {
      Lit L = T[TheoryHead++];
      const AtomInfo &A = Atoms[litVar(L)];
      if (A.L == InvalidTerm)
        continue;
      bool Ok = litSign(L) ? EC.assertDiseq(A.L, A.R) : EC.assertEq(A.L, A.R);
      if (!Ok)
        return false;
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Translation (exact or dropped — never approximate)
  //===--------------------------------------------------------------------===//

  BVar newAtomVar(const Expr &Key, AtomInfo Info) {
    BVar V = CS.newVar();
    Atoms.push_back(std::move(Info));
    AtomVar.emplace(Key, V);
    CurFrame->NewAtoms.push_back(Key);
    return V;
  }

  Lit eqAtomLit(const Expr &A0, const Expr &B0) {
    // Orient under ExprOrdering so `a == b` and `b == a` share one atom.
    Expr A = A0, B = B0;
    if (ExprOrdering{}(B, A))
      std::swap(A, B);
    Expr Key = Expr::eq(A, B);
    auto It = AtomVar.find(Key);
    if (It != AtomVar.end())
      return mkLit(It->second);
    return mkLit(newAtomVar(Key, {Key, EC.intern(A), EC.intern(B)}));
  }

  Lit opaqueAtomLit(const Expr &E) {
    auto It = AtomVar.find(E);
    if (It != AtomVar.end())
      return mkLit(It->second);
    return mkLit(newAtomVar(E, {E}));
  }

  /// Tseitin encoding of a nested and/or: an aux variable equivalent to
  /// the connective, defined by three clauses. Exact, so Unsat stays sound.
  std::optional<Lit> tseitinLit(const Expr &E) {
    auto It = AtomVar.find(E);
    if (It != AtomVar.end())
      return mkLit(It->second);
    bool IsAnd = E.binOpKind() == BinOpKind::And;
    std::optional<Lit> A = litOf(E.child(0));
    if (!A)
      return std::nullopt;
    std::optional<Lit> B = litOf(E.child(1));
    if (!B)
      return std::nullopt;
    Lit V = mkLit(newAtomVar(E, {}));
    bool Ok = true;
    if (IsAnd) {
      Ok &= CS.addClause({litNot(V), *A});
      Ok &= CS.addClause({litNot(V), *B});
      Ok &= CS.addClause({V, litNot(*A), litNot(*B)});
    } else {
      Ok &= CS.addClause({litNot(V), *A, *B});
      Ok &= CS.addClause({V, litNot(*A)});
      Ok &= CS.addClause({V, litNot(*B)});
    }
    if (!Ok)
      AssertConflict = true;
    return V;
  }

  /// The literal equivalent to boolean expression \p E, or nullopt when
  /// \p E has no exact propositional translation.
  std::optional<Lit> litOf(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Lit:
      if (E.litValue().isBool())
        return E.litValue().asBool() ? TrueLit : litNot(TrueLit);
      return std::nullopt;
    case ExprKind::LVar:
      return opaqueAtomLit(E); // boolean variable used as a formula
    case ExprKind::UnOp:
      if (E.unOpKind() == UnOpKind::Not) {
        std::optional<Lit> L = litOf(E.child(0));
        if (!L)
          return std::nullopt;
        return litNot(*L);
      }
      return std::nullopt;
    case ExprKind::BinOp:
      switch (E.binOpKind()) {
      case BinOpKind::And:
      case BinOpKind::Or:
        return tseitinLit(E);
      case BinOpKind::Eq:
        return eqAtomLit(E.child(0), E.child(1));
      case BinOpKind::Lt:
      case BinOpKind::Le:
        // Opaque propositionally; sides double as order hints for model
        // construction (see proposeModel).
        return opaqueAtomLit(E);
      default:
        return std::nullopt;
      }
    case ExprKind::PVar:
    case ExprKind::List:
      return std::nullopt;
    }
    return std::nullopt;
  }

  /// Asserts one top-level conjunct. Returns false when (part of) it was
  /// dropped as untranslatable; conflicts set AssertConflict.
  bool assertConjunct(const Expr &C) {
    if (C.kind() == ExprKind::BinOp && C.binOpKind() == BinOpKind::And) {
      // Assert both sides even if one is unsupported: more asserted facts
      // means more Unsat power, and dropping is tracked either way.
      bool L = assertConjunct(C.child(0));
      bool R = assertConjunct(C.child(1));
      return L && R;
    }
    std::optional<Lit> L = litOf(C);
    if (!L)
      return false;
    if (!CS.addClause({*L}))
      AssertConflict = true;
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Frames
  //===--------------------------------------------------------------------===//

  bool anyConflictedFrame() const {
    for (const Frame &F : Frames)
      if (F.Conflicted)
        return true;
    return false;
  }

  void pushFrame(std::vector<Expr> Delta) {
    Frames.emplace_back();
    Frame &F = Frames.back();
    F.CMark = CS.mark();
    F.EqMark = EC.mark();
    F.Conjuncts = std::move(Delta);
    Asserted += F.Conjuncts.size();
    if (anyConflictedFrame())
      return; // prefix already Unsat: assert nothing more
    CurFrame = &F;
    AssertConflict = false;
    for (const Expr &C : F.Conjuncts) {
      if (AssertConflict)
        break;
      if (!assertConjunct(C))
        F.Dropped = true;
    }
    if (!AssertConflict && !CS.propagate())
      AssertConflict = true;
    if (!AssertConflict && !applyTheory())
      AssertConflict = true;
    F.Conflicted = AssertConflict;
    CurFrame = nullptr;
  }

  void popFrame() {
    Frame &F = Frames.back();
    CS.popTo(F.CMark);
    if (TheoryHead > F.CMark.TrailSz)
      TheoryHead = F.CMark.TrailSz;
    EC.undoTo(F.EqMark);
    for (const Expr &E : F.NewAtoms)
      AtomVar.erase(E);
    Asserted -= F.Conjuncts.size();
    Frames.pop_back();
  }

  /// Longest live frame prefix matching \p PC's canonical conjunct list.
  size_t matchingFrames(const PathCondition &PC, size_t &ConjCount) const {
    const std::vector<Expr> &Cs = PC.conjuncts();
    size_t Pos = 0, NF = 0;
    for (const Frame &F : Frames) {
      if (Pos + F.Conjuncts.size() > Cs.size() ||
          !std::equal(F.Conjuncts.begin(), F.Conjuncts.end(),
                      Cs.begin() + Pos))
        break;
      Pos += F.Conjuncts.size();
      ++NF;
    }
    ConjCount = Pos;
    return NF;
  }

  //===--------------------------------------------------------------------===//
  // Search
  //===--------------------------------------------------------------------===//

  SatResult search(const PathCondition &PC, const TypeEnv &Types,
                   SolverStats &Stats) {
    const size_t Base = CS.trail().size();
    const size_t BaseEq = EC.mark();
    struct Decision {
      BVar V;
      bool Flipped;
      bool FirstNeg;
      size_t TrailMark;
      size_t EqMark;
    };
    std::vector<Decision> Ds;
    std::vector<uint8_t> Relevant;
    CS.relevantVars(Relevant);
    size_t Budget = SearchBudget, Conflicts = 0;

    while (true) {
      if (!CS.propagate() || !applyTheory()) {
        // Chronological backtracking: flip the deepest unflipped decision.
        if (++Conflicts % 64 == 0)
          CS.decay();
        while (!Ds.empty() && Ds.back().Flipped) {
          rollbackTo(Ds.back().TrailMark, Ds.back().EqMark);
          Ds.pop_back();
        }
        if (Ds.empty()) {
          rollbackTo(Base, BaseEq);
          return SatResult::Unsat;
        }
        Decision &Top = Ds.back();
        CS.bump(Top.V);
        rollbackTo(Top.TrailMark, Top.EqMark);
        Top.Flipped = true;
        CS.enqueue(mkLit(Top.V, !Top.FirstNeg));
        continue;
      }
      if (--Budget == 0) {
        rollbackTo(Base, BaseEq);
        return SatResult::Unknown; // effort cap: delegate to Z3
      }
      BVar V = CS.pickUnassigned(Relevant);
      if (V == InvalidBVar) {
        // Theory-consistent total assignment over the live clauses: try to
        // certify Sat with an evaluated model.
        std::optional<Model> M = proposeModel(PC, Types);
        bool Verified = false;
        if (M) {
          ++Stats.ModelsProposed;
          Verified = M->satisfies(PC);
          if (Verified)
            ++Stats.ModelsVerified;
        }
        rollbackTo(Base, BaseEq);
        return Verified ? SatResult::Sat : SatResult::Unknown;
      }
      bool Neg = !CS.savedPhase(V);
      Ds.push_back({V, false, Neg, CS.trail().size(), EC.mark()});
      CS.enqueue(mkLit(V, Neg));
    }
  }

  //===--------------------------------------------------------------------===//
  // Model construction
  //===--------------------------------------------------------------------===//

  struct ClassPlan {
    std::vector<InternedString> Vars;
    const Value *Fixed = nullptr; ///< class literal (or forced boolean)
    Value Forced;                 ///< storage when forced, Fixed points here
    double Lo = 0.0, Hi = 0.0;
    bool HasLo = false, LoStrict = false, HasHi = false, HiStrict = false;
    bool NumHint = false; ///< a comparison bound literal was a Num
    double Base = 0.0;    ///< relaxed numeric start value
  };

  GilType classType(const ClassPlan &P, const TypeEnv &Types) const {
    for (InternedString X : P.Vars)
      if (std::optional<GilType> T = Types.lookup(X))
        return *T;
    if (P.Fixed)
      return P.Fixed->type();
    // Type inference leaves mixed Int/Num comparisons unpinned (both are
    // legal in GIL); a Num bound literal is the better guess then —
    // verification by evaluation gates a wrong one either way.
    return P.NumHint ? GilType::Num : GilType::Int;
  }

  /// K-th candidate value for a class (deterministic). Numeric candidates
  /// respect literal bounds; everything else enumerates small distinct
  /// values. Verification by evaluation is the actual gate.
  std::optional<Value> candidate(const ClassPlan &P, GilType Ty,
                                 int K) const {
    switch (Ty) {
    case GilType::Int: {
      // Fractional bounds (Num literals constraining an Int variable)
      // round inward: the candidate must be an integer inside the window.
      double Lo = 0.0;
      if (P.HasLo) {
        Lo = std::ceil(P.Lo);
        if (Lo == P.Lo && P.LoStrict)
          Lo += 1.0;
      }
      double V = std::max(std::ceil(P.Base), Lo) + K;
      if (P.HasHi) {
        double Hi = std::floor(P.Hi);
        if (Hi == P.Hi && P.HiStrict)
          Hi -= 1.0;
        if (V > Hi)
          return std::nullopt;
      }
      return Value::intV(static_cast<int64_t>(V));
    }
    case GilType::Num: {
      if (P.HasHi) {
        // Fractions of the remaining open window: strictly increasing in
        // K, never reaching the bound — infinitely many reals fit any
        // window, which is exactly what the disequality-entangled
        // real-number conditions of the bst/pqueue suites need.
        double Span = P.Hi - P.Base;
        if (Span <= 0)
          return std::nullopt;
        return Value::numV(P.Base +
                           Span * (K + 1) / (ModelAttempts + 2.0));
      }
      return Value::numV(P.Base + K); // Base already clears a strict bound
    }
    case GilType::Str:
      return Value::strV("s" + std::to_string(K));
    case GilType::Bool:
      if (K > 1)
        return std::nullopt;
      return Value::boolV(K == 1);
    case GilType::Sym:
      return Value::symV("n" + std::to_string(K));
    case GilType::Type:
      if (K >= 8)
        return std::nullopt;
      return Value::typeV(static_cast<GilType>(K));
    case GilType::Proc:
      return Value::procV("p" + std::to_string(K));
    case GilType::List:
      return K == 0 ? Value::listV({})
                    : Value::listV({Value::intV(K)});
    }
    return std::nullopt;
  }

  std::optional<Model> proposeModel(const PathCondition &PC,
                                    const TypeEnv &Types) {
    std::set<InternedString> LVars;
    PC.collectLVars(LVars);
    Model M;
    if (LVars.empty())
      return M; // ground condition: satisfies() decides on its own

    // Equivalence classes of the query's variables (map order by rep id —
    // deterministic given the session's interning history).
    std::map<TermId, ClassPlan> Classes;
    for (InternedString X : LVars)
      Classes[EC.find(EC.intern(Expr::lvar(X)))].Vars.push_back(X);
    for (auto &[Rep, P] : Classes)
      P.Fixed = EC.classValue(Rep);

    // Boolean variables used directly as formulas are pinned by their
    // atom's truth value.
    for (BVar V = 0; V < Atoms.size(); ++V) {
      const AtomInfo &A = Atoms[V];
      if (!A.E || !A.E.isLVar() || CS.value(V) == LBool::Undef)
        continue;
      auto It = Classes.find(EC.find(EC.intern(A.E)));
      if (It != Classes.end() && !It->second.Fixed) {
        It->second.Forced = Value::boolV(CS.value(V) == LBool::True);
        It->second.Fixed = &It->second.Forced;
      }
    }

    // Order hints from assigned comparison atoms: `x < y` false means
    // `y <= x` over numbers (our models carry no NaN, so the complement
    // is exact for the values we construct; evaluation verifies anyway).
    struct Edge {
      TermId Lo, Hi;
      bool Strict;
    };
    std::vector<Edge> Edges;
    auto classOf = [&](const Expr &E) -> ClassPlan * {
      if (!E.isLVar())
        return nullptr;
      auto It = Classes.find(EC.find(EC.intern(E)));
      return It == Classes.end() ? nullptr : &It->second;
    };
    auto repOf = [&](const Expr &E) { return EC.find(EC.intern(E)); };
    for (BVar V = 0; V < Atoms.size(); ++V) {
      const AtomInfo &A = Atoms[V];
      if (!A.E || A.L != InvalidTerm || CS.value(V) == LBool::Undef ||
          A.E.kind() != ExprKind::BinOp)
        continue;
      BinOpKind K = A.E.binOpKind();
      if (K != BinOpKind::Lt && K != BinOpKind::Le)
        continue;
      bool T = CS.value(V) == LBool::True;
      const Expr &LoE = T ? A.E.child(0) : A.E.child(1);
      const Expr &HiE = T ? A.E.child(1) : A.E.child(0);
      bool Strict = T ? K == BinOpKind::Lt : K == BinOpKind::Le;
      bool LoLit = LoE.isLit() && LoE.litValue().isNumeric();
      bool HiLit = HiE.isLit() && HiE.litValue().isNumeric();
      if (LoLit && classOf(HiE)) {
        ClassPlan &P = *classOf(HiE);
        double B = LoE.litValue().asDouble();
        if (LoE.litValue().type() == GilType::Num)
          P.NumHint = true;
        if (!P.HasLo || B > P.Lo || (B == P.Lo && Strict)) {
          P.Lo = B;
          P.LoStrict = Strict;
          P.HasLo = true;
        }
      } else if (HiLit && classOf(LoE)) {
        ClassPlan &P = *classOf(LoE);
        double B = HiE.litValue().asDouble();
        if (HiE.litValue().type() == GilType::Num)
          P.NumHint = true;
        if (!P.HasHi || B < P.Hi || (B == P.Hi && Strict)) {
          P.Hi = B;
          P.HiStrict = Strict;
          P.HasHi = true;
        }
      } else if (classOf(LoE) && classOf(HiE)) {
        Edges.push_back({repOf(LoE), repOf(HiE), Strict});
      }
    }

    // Seed numeric bases at the lower bounds, then relax the var-to-var
    // order edges to a fixpoint (bounded passes; leftover violations are
    // caught by verification and delegated to Z3).
    for (auto &[Rep, P] : Classes)
      P.Base = P.HasLo ? P.Lo + (P.LoStrict ? 1.0 : 0.0) : 0.0;
    for (size_t Pass = 0; Pass <= Classes.size(); ++Pass) {
      bool Changed = false;
      for (const Edge &E : Edges) {
        auto LoIt = Classes.find(E.Lo), HiIt = Classes.find(E.Hi);
        if (LoIt == Classes.end() || HiIt == Classes.end())
          continue;
        double Need = LoIt->second.Base + (E.Strict ? 1.0 : 0.0);
        if (HiIt->second.Base < Need) {
          HiIt->second.Base = Need;
          Changed = true;
        }
      }
      if (!Changed)
        break;
    }

    // Assign values class by class, distinct across disequality edges.
    std::map<TermId, Value> Chosen;
    std::vector<TermId> Neigh;
    for (auto &[Rep, P] : Classes) {
      if (P.Fixed) {
        Chosen.emplace(Rep, *P.Fixed);
        continue;
      }
      Neigh.clear();
      EC.diseqNeighborReps(Rep, Neigh);
      auto Taken = [&](const Value &V) {
        for (TermId N : Neigh) {
          auto It = Chosen.find(EC.find(N));
          if (It != Chosen.end() && It->second == V)
            return true;
          if (const Value *L = EC.classValue(N); L && *L == V)
            return true;
        }
        return false;
      };
      GilType Ty = classType(P, Types);
      bool Done = false;
      for (int K = 0; K < ModelAttempts && !Done; ++K) {
        std::optional<Value> C = candidate(P, Ty, K);
        if (!C)
          break;
        if (!Taken(*C)) {
          Chosen.emplace(Rep, *C);
          Done = true;
        }
      }
      if (!Done)
        return std::nullopt; // no distinct in-bounds value: delegate
    }

    for (auto &[Rep, P] : Classes)
      for (InternedString X : P.Vars)
        M.bind(X, Chosen.at(Rep));
    return M;
  }

  //===--------------------------------------------------------------------===//
  // Entry point
  //===--------------------------------------------------------------------===//

  SatResult checkSat(const PathCondition &PC, const TypeEnv &Types,
                     SolverStats &Stats) {
    size_t KeepConj = 0;
    size_t KeepFrames = matchingFrames(PC, KeepConj);
    while (Frames.size() > KeepFrames)
      popFrame();
    Stats.NativeFramesReused += KeepFrames;
    Stats.NativeConjunctsReused += KeepConj;

    const std::vector<Expr> &Cs = PC.conjuncts();
    if (KeepConj < Cs.size())
      pushFrame(std::vector<Expr>(Cs.begin() + KeepConj, Cs.end()));

    // A conflicted frame proves a subset of PC's conjuncts inconsistent —
    // Unsat for this query and for every extension that reuses the prefix.
    if (anyConflictedFrame())
      return SatResult::Unsat;
    return search(PC, Types, Stats);
  }

  void reset() {
    CS.clear();
    EC.clear();
    AtomVar.clear();
    Atoms.clear();
    Frames.clear();
    Asserted = 0;
    TheoryHead = 0;
    init();
  }
};

//===----------------------------------------------------------------------===//
// NativeSession
//===----------------------------------------------------------------------===//

NativeSession::NativeSession() : P(std::make_unique<Impl>()) {}
NativeSession::~NativeSession() = default;

size_t NativeSession::reusableConjuncts(const PathCondition &PC) const {
  size_t Conj = 0;
  P->matchingFrames(PC, Conj);
  return Conj;
}

SatResult NativeSession::checkSat(const PathCondition &PC,
                                  const TypeEnv &Types, SolverStats &Stats) {
  return P->checkSat(PC, Types, Stats);
}

void NativeSession::reset() { P->reset(); }
size_t NativeSession::depth() const { return P->Frames.size(); }
size_t NativeSession::assertedConjuncts() const { return P->Asserted; }

//===----------------------------------------------------------------------===//
// NativeSessionPool
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> NativeGlobalGen{1};
} // namespace

NativeSessionPool &NativeSessionPool::forThread() {
  thread_local NativeSessionPool Pool;
  return Pool;
}

void NativeSessionPool::invalidateAll() {
  NativeGlobalGen.fetch_add(1, std::memory_order_relaxed);
}

void NativeSessionPool::maybeGenerationReset() {
  uint64_t G = NativeGlobalGen.load(std::memory_order_relaxed);
  if (LocalGen != G) {
    Pool.clear();
    LocalGen = G;
  }
}

size_t NativeSessionPool::sessions() {
  maybeGenerationReset();
  return Pool.size();
}

void NativeSessionPool::reset() {
  Pool.clear();
  LocalGen = NativeGlobalGen.load(std::memory_order_relaxed);
}

SatResult NativeSessionPool::checkSat(const PathCondition &PC,
                                      const TypeEnv &Types,
                                      SolverStats &Stats) {
  maybeGenerationReset();

  // Route to the session sharing the longest asserted prefix; a query
  // sharing nothing claims a fresh session before evicting the LRU one.
  size_t BestIdx = Pool.size();
  size_t BestShare = 0;
  for (size_t I = 0; I < Pool.size(); ++I) {
    size_t S = Pool[I]->reusableConjuncts(PC);
    if (S > BestShare) {
      BestShare = S;
      BestIdx = I;
    }
  }
  if (BestIdx == Pool.size()) {
    if (Pool.size() >= MaxSessions) {
      Pool.erase(Pool.begin()); // evict LRU
    }
    Pool.push_back(std::make_unique<NativeSession>());
    BestIdx = Pool.size() - 1;
  }
  // Move to MRU position.
  std::unique_ptr<NativeSession> S = std::move(Pool[BestIdx]);
  Pool.erase(Pool.begin() + BestIdx);
  Pool.push_back(std::move(S));
  return Pool.back()->checkSat(PC, Types, Stats);
}
