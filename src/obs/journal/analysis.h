//===- obs/journal/analysis.h - Journal tree/why/diff analysis -*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analyses over a parsed journal (DESIGN.md §4i): path-tree
/// reconstruction with wall/solver/prune rollups along edges, per-path
/// provenance replay (`gillian-inspect why`), branch-trace-aligned run
/// diffing (`gillian-inspect diff`), and the canonical tree signature the
/// invariance property test compares across worker counts and strategies.
///
/// Nodes are aligned across runs by *branch trace* — the sequence of
/// production indices from the root — which the scheduler guarantees is
/// worker- and strategy-invariant, not by the run-dependent node ids.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_JOURNAL_ANALYSIS_H
#define GILLIAN_OBS_JOURNAL_ANALYSIS_H

#include "obs/journal/journal_io.h"

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace gillian::obs::journal {

/// One path-tree node: a maximal single-successor run of steps sharing a
/// journal node id. Children exist only at multi-output steps.
struct TreeNode {
  uint64_t Id = 0;
  uint64_t Parent = 0; ///< 0 for roots and detached nodes
  uint32_t BranchIdx = 0;
  bool IsRoot = false;
  size_t EdgeEvent = SIZE_MAX; ///< the Branch event that created this node
  std::vector<size_t> Events;  ///< indices into JournalData::Events
  std::vector<std::pair<uint32_t, uint64_t>> Children; ///< (idx, id) sorted
  // Subtree rollups, filled by buildForest:
  uint64_t SubtreeWallNs = 0; ///< solver wall of all decisions below
  uint32_t SubtreePrunes = 0; ///< pruned branch sides below
  uint32_t SubtreePaths = 0;  ///< terminated paths below
  uint32_t SubtreeNodes = 0;
};

struct PathForest {
  const JournalData *Data = nullptr;
  std::unordered_map<uint64_t, TreeNode> Nodes;
  std::vector<uint64_t> Roots; ///< id order == allocation order == test order
  /// Root display labels ("<entry-proc>#<ordinal>"), parallel to Roots.
  std::vector<std::string> RootLabels;
};

PathForest buildForest(const JournalData &D);

/// Human-readable path tree, collapsed below \p Depth edge levels
/// (0 = roots only).
std::string treeText(const JournalData &D, size_t Depth);

/// JSON path tree (the /tree endpoint body and `tree --json` output).
/// \p Enabled is surfaced as the top-level "enabled" field.
std::string treeJson(const JournalData &D, size_t Depth, bool Enabled = true);

/// Captures the live journal and renders treeJson — the /tree?depth=N
/// endpoint body (reports enabled=false with an empty forest when the
/// journal is off).
std::string liveTreeJson(size_t Depth);

/// The provenance chain of one path: every branch decision from the root
/// to the queried node, the solver layer that decided each, the summary
/// records spliced, and the termination. \p Query is a node id ("17") or
/// a branch trace ("test_bst#0:0.1.0" / "test_bst:0.1.0" / "test_bst").
/// Returns false (with a diagnostic in \p Out) if the query resolves to
/// no node.
bool whyText(const JournalData &D, const std::string &Query,
             std::string &Out);

/// Branch-trace-aligned diff of two journals: diverging prunes, per-site
/// verdict-layer shifts (the native→Z3 view of `--no-native` ablations),
/// and per-site solver-wall deltas. \p Top caps each report section.
std::string diffText(const JournalData &A, const JournalData &B, size_t Top);
std::string diffJson(const JournalData &A, const JournalData &B, size_t Top);

/// Schedule-invariant signature of the reconstructed forest: roots in
/// allocation (= test) order, children in branch-index order, per-node
/// events canonicalised to their semantic content (site, side, taken,
/// PC delta, action, outcome, step) — excluding the run-dependent fields
/// (node ids, verdict layer, wall time, spawn priorities, summary
/// hit/miss). Two runs of the same suites produce equal signatures at any
/// worker count and strategy; the invariance test pins this down.
std::string canonicalTreeSignature(const JournalData &D);

} // namespace gillian::obs::journal

#endif // GILLIAN_OBS_JOURNAL_ANALYSIS_H
