//===- tests/support/interner_test.cpp ------------------------------------===//

#include "support/interner.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace gillian;

TEST(Interner, SameSpellingSameId) {
  InternedString A = InternedString::get("hello");
  InternedString B = InternedString::get("hello");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.id(), B.id());
}

TEST(Interner, DifferentSpellingDifferentId) {
  EXPECT_NE(InternedString::get("a"), InternedString::get("b"));
}

TEST(Interner, RoundTripsSpelling) {
  InternedString S = InternedString::get("some_longer_identifier$42");
  EXPECT_EQ(S.str(), "some_longer_identifier$42");
}

TEST(Interner, EmptyStringIsIdZero) {
  InternedString E = InternedString::get("");
  EXPECT_EQ(E.id(), 0u);
  EXPECT_TRUE(E.empty());
  EXPECT_FALSE(InternedString::get("x").empty());
}

TEST(Interner, DefaultConstructedIsEmpty) {
  InternedString D;
  EXPECT_TRUE(D.empty());
  EXPECT_EQ(D, InternedString::get(""));
}

TEST(Interner, FromRawRoundTrips) {
  InternedString S = InternedString::get("raw_round_trip");
  EXPECT_EQ(InternedString::fromRaw(S.id()), S);
}

TEST(Interner, EmbeddedNulAndUnicodeSafe) {
  std::string WithNul("a\0b", 3);
  InternedString A = InternedString::get(WithNul);
  EXPECT_EQ(A.str().size(), 3u);
  InternedString U = InternedString::get("π∧σ");
  EXPECT_EQ(U.str(), "π∧σ");
  EXPECT_NE(A, U);
}

TEST(Interner, ViewsStableAcrossGrowth) {
  InternedString First = InternedString::get("stable_view_probe");
  std::string_view View = First.str();
  for (int I = 0; I < 10000; ++I)
    InternedString::get("filler_" + std::to_string(I));
  EXPECT_EQ(View, "stable_view_probe"); // storage must not move
}

TEST(Interner, ConcurrentInterningIsConsistent) {
  constexpr int N = 200;
  std::vector<std::thread> Threads;
  std::vector<uint32_t> Ids(4 * N);
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([T, &Ids] {
      for (int I = 0; I < N; ++I)
        Ids[static_cast<size_t>(T) * N + I] =
            InternedString::get("conc_" + std::to_string(I)).id();
    });
  for (std::thread &T : Threads)
    T.join();
  for (int I = 0; I < N; ++I)
    for (int T = 1; T < 4; ++T)
      EXPECT_EQ(Ids[I], Ids[static_cast<size_t>(T) * N + I]);
}
