//===- solver/solver.h - Layered first-order solver ------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first-order solver behind the symbolic engine's SAT checks (the
/// "π ∧ π' SAT" side conditions of Def 2.6 and the action rules). It is
/// layered — simplification happens upstream, then result cache, then the
/// syntactic core, then Z3 — and every layer can be disabled to reproduce
/// the JaVerT 2.0 baseline configuration ("better simplifications and
/// better caching of results", §4.1).
///
/// Unknown is treated as possibly-satisfiable by the engine (sound for
/// bounded symbolic testing: it keeps paths alive). Bug reports are gated
/// on a *verified* counter-model, so the no-false-positives guarantee of
/// §3 survives solver incompleteness.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_SOLVER_H
#define GILLIAN_SOLVER_SOLVER_H

#include "solver/model.h"
#include "solver/path_condition.h"
#include "solver/syntactic.h"

#include <optional>
#include <unordered_map>

namespace gillian {

struct SolverOptions {
  bool UseCache = true;
  bool UseSyntactic = true;
  bool UseZ3 = true;

  /// The paper's baseline configuration: no result caching (JaVerT 2.0
  /// had its own first-order layer, so the syntactic core stays on — the
  /// improvements §4.1 credits are "better simplifications and better
  /// caching of results").
  static SolverOptions legacyJaVerT2() {
    SolverOptions O;
    O.UseCache = false;
    return O;
  }
};

struct SolverStats {
  uint64_t Queries = 0;
  uint64_t TrivialAnswers = 0;   ///< empty / trivially-false conditions
  uint64_t CacheHits = 0;
  uint64_t SyntacticUnsat = 0;
  uint64_t SyntacticSat = 0; ///< decided by verified syntactic models
  uint64_t Z3Calls = 0;
  uint64_t Sat = 0, Unsat = 0, Unknown = 0;
  uint64_t ModelsProposed = 0;
  uint64_t ModelsVerified = 0;
};

/// A stateful (caching) satisfiability oracle for path conditions.
class Solver {
public:
  explicit Solver(SolverOptions Opts = SolverOptions()) : Opts(Opts) {}

  /// Is \p PC satisfiable? Unknown means "could not decide" and is treated
  /// as possibly-Sat by the engine.
  SatResult checkSat(const PathCondition &PC);

  /// True unless \p PC is *provably* unsatisfiable — the engine's branch
  /// feasibility test.
  bool maybeSat(const PathCondition &PC) {
    return checkSat(PC) != SatResult::Unsat;
  }

  /// Produces a model of \p PC that has been *verified* by evaluating every
  /// conjunct to true, or nullopt. Verified models are the counter-models
  /// reported to users and the ε environments used by the §3 replay tests.
  std::optional<Model> verifiedModel(const PathCondition &PC);

  const SolverStats &stats() const { return Stats; }
  void resetStats() { Stats = SolverStats(); }
  const SolverOptions &options() const { return Opts; }

private:
  SolverOptions Opts;
  SolverStats Stats;
  std::unordered_map<PathCondition, SatResult> Cache;
};

} // namespace gillian

#endif // GILLIAN_SOLVER_SOLVER_H
