//===- solver/solver.cpp --------------------------------------------------===//

#include "solver/solver.h"

#include "solver/z3_backend.h"

using namespace gillian;

SatResult Solver::checkSat(const PathCondition &PC) {
  ++Stats.Queries;
  if (PC.isTriviallyFalse()) {
    ++Stats.TrivialAnswers;
    ++Stats.Unsat;
    return SatResult::Unsat;
  }
  if (PC.empty()) {
    ++Stats.TrivialAnswers;
    ++Stats.Sat;
    return SatResult::Sat;
  }

  if (Opts.UseCache) {
    auto It = Cache.find(PC);
    if (It != Cache.end()) {
      ++Stats.CacheHits;
      return It->second;
    }
  }

  SatResult R = SatResult::Unknown;
  if (Opts.UseSyntactic) {
    R = checkSatSyntactic(PC);
    if (R == SatResult::Unsat)
      ++Stats.SyntacticUnsat;
    // SAT certification without SMT: propose a candidate model from the
    // syntactic analysis and verify it by evaluating every conjunct —
    // sound by construction, and it short-circuits the Z3 round-trip on
    // the common simple path conditions symbolic execution produces.
    if (R == SatResult::Unknown) {
      if (std::optional<Model> M = proposeModelSyntactic(PC)) {
        ++Stats.ModelsProposed;
        if (M->satisfies(PC)) {
          ++Stats.ModelsVerified;
          ++Stats.SyntacticSat;
          R = SatResult::Sat;
        }
      }
    }
  }
  if (R == SatResult::Unknown && Opts.UseZ3 && z3Available()) {
    ++Stats.Z3Calls;
    TypeEnv Types;
    if (!inferTypes(PC.conjuncts(), Types)) {
      R = SatResult::Unsat;
    } else {
      R = checkSatZ3(PC, Types, /*WantModel=*/false).Verdict;
    }
  }

  switch (R) {
  case SatResult::Sat: ++Stats.Sat; break;
  case SatResult::Unsat: ++Stats.Unsat; break;
  case SatResult::Unknown: ++Stats.Unknown; break;
  }
  if (Opts.UseCache)
    Cache.emplace(PC, R);
  return R;
}

std::optional<Model> Solver::verifiedModel(const PathCondition &PC) {
  if (PC.isTriviallyFalse())
    return std::nullopt;

  // First try the cheap syntactic proposal.
  if (Opts.UseSyntactic) {
    if (auto M = proposeModelSyntactic(PC)) {
      ++Stats.ModelsProposed;
      if (M->satisfies(PC)) {
        ++Stats.ModelsVerified;
        return M;
      }
    }
  }
  if (Opts.UseZ3 && z3Available()) {
    TypeEnv Types;
    if (!inferTypes(PC.conjuncts(), Types))
      return std::nullopt;
    ++Stats.Z3Calls;
    Z3Outcome Out = checkSatZ3(PC, Types, /*WantModel=*/true);
    if (Out.CandidateModel) {
      ++Stats.ModelsProposed;
      if (Out.CandidateModel->satisfies(PC)) {
        ++Stats.ModelsVerified;
        return Out.CandidateModel;
      }
    }
  }
  return std::nullopt;
}
