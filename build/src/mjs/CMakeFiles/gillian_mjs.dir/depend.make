# Empty dependencies file for gillian_mjs.
# This may be replaced when dependencies are built.
