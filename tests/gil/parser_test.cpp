//===- tests/gil/parser_test.cpp ------------------------------------------===//

#include "gil/parser.h"

#include <gtest/gtest.h>

using namespace gillian;

namespace {

Expr parseOk(std::string_view S) {
  Result<Expr> R = parseGilExpr(S);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return R.ok() ? R.take() : Expr();
}

} // namespace

TEST(GilParser, Literals) {
  EXPECT_EQ(parseOk("42").litValue().asInt(), 42);
  EXPECT_DOUBLE_EQ(parseOk("2.5").litValue().asNum(), 2.5);
  EXPECT_EQ(parseOk("\"hi\"").litValue().asStr().str(), "hi");
  EXPECT_TRUE(parseOk("true").litValue().asBool());
  EXPECT_EQ(parseOk("$loc").litValue().asSym().str(), "$loc");
  EXPECT_EQ(parseOk("^Int").litValue().asType(), GilType::Int);
  EXPECT_EQ(parseOk("&main").litValue().asProc().str(), "main");
}

TEST(GilParser, Variables) {
  EXPECT_EQ(parseOk("x").kind(), ExprKind::PVar);
  EXPECT_EQ(parseOk("#lv").kind(), ExprKind::LVar);
}

TEST(GilParser, PrecedenceArithOverComparison) {
  EXPECT_EQ(parseOk("a + b * c < d").toString(), "((a + (b * c)) < d)");
  EXPECT_EQ(parseOk("a && b || c").toString(), "((a && b) || c)");
  EXPECT_EQ(parseOk("! a && b").toString(), "((! a) && b)");
}

TEST(GilParser, GtDesugarsToSwappedLt) {
  EXPECT_EQ(parseOk("a > b").toString(), "(b < a)");
  EXPECT_EQ(parseOk("a >= b").toString(), "(b <= a)");
  EXPECT_EQ(parseOk("a != b").toString(), "(! (a == b))");
}

TEST(GilParser, ConsIsRightAssociative) {
  EXPECT_EQ(parseOk("a :: b :: l").toString(), "(a :: (b :: l))");
}

TEST(GilParser, KeywordOperators) {
  EXPECT_EQ(parseOk("typeof(x)").unOpKind(), UnOpKind::TypeOf);
  EXPECT_EQ(parseOk("len(l) + slen(s)").toString(), "(len(l) + slen(s))");
  EXPECT_EQ(parseOk("l_nth(l, i)").binOpKind(), BinOpKind::ListNth);
  // Keyword not followed by '(' is an ordinary variable.
  EXPECT_EQ(parseOk("len").kind(), ExprKind::PVar);
}

TEST(GilParser, Lists) {
  Expr E = parseOk("[1, x, [2]]");
  ASSERT_EQ(E.kind(), ExprKind::List);
  EXPECT_EQ(E.numChildren(), 3u);
  EXPECT_EQ(parseOk("[]").numChildren(), 0u);
}

TEST(GilParser, ExprRoundTripsThroughToString) {
  for (const char *Src :
       {"((x + 1) * (y - 2))", "(typeof(#v) == ^Str)",
        "l_nth([1, 2, \"three\"], (i % 3))", "(- (x << 2))",
        "((a @+ \"x\") == \"yx\")", "(hd(tl(l)) :: [])"}) {
    Expr E = parseOk(Src);
    Expr R = parseOk(E.toString());
    EXPECT_EQ(E, R) << Src << " vs " << E.toString();
  }
}

TEST(GilParser, ErrorsReportPosition) {
  Result<Expr> R = parseGilExpr("1 + ");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("line 1"), std::string::npos);
  EXPECT_FALSE(parseGilExpr("1 2").ok()) << "trailing input";
  EXPECT_FALSE(parseGilExpr("^NotAType").ok());
}

TEST(GilParser, ProgramParsesAndRoundTrips) {
  const char *Src = R"(
    proc main(args) {
      0: x := 1;
      1: ifgoto (x < 10) 3;
      2: return x;
      3: y := @lookup([$l, "p"]);
      4: z := "helper"(x);
      5: u := usym(0);
      6: v := isym(1);
      7: fail "nope";
    }
    proc helper(n) {
      return n + 1;
    }
  )";
  Result<Prog> P = parseGilProg(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(P->size(), 2u);
  const Proc *Main = P->find("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_EQ(Main->Body.size(), 8u);
  EXPECT_EQ(Main->Body[1].Kind, CmdKind::IfGoto);
  EXPECT_EQ(Main->Body[1].Target, 3u);
  EXPECT_EQ(Main->Body[3].Kind, CmdKind::Action);
  EXPECT_EQ(Main->Body[3].Action.str(), "lookup");
  EXPECT_EQ(Main->Body[4].Kind, CmdKind::Call);
  EXPECT_EQ(Main->Body[5].Kind, CmdKind::USym);
  EXPECT_EQ(Main->Body[6].Kind, CmdKind::ISym);
  EXPECT_EQ(Main->Body[6].Site, 1u);

  // Round trip: print, reparse, print again — fixpoint.
  std::string Printed = P->toString();
  Result<Prog> P2 = parseGilProg(Printed);
  ASSERT_TRUE(P2.ok()) << P2.error() << "\n" << Printed;
  EXPECT_EQ(P2->toString(), Printed);
}

TEST(GilParser, GotoSugar) {
  Result<Prog> P = parseGilProg("proc f(x) { 0: goto 2; 1: vanish; 2: return x; }");
  ASSERT_TRUE(P.ok()) << P.error();
  const Cmd &C = P->find("f")->Body[0];
  EXPECT_EQ(C.Kind, CmdKind::IfGoto);
  EXPECT_TRUE(C.E.isTrue());
  EXPECT_EQ(C.Target, 2u);
}

TEST(GilParser, MismatchedLabelIsError) {
  Result<Prog> P = parseGilProg("proc f(x) { 1: return x; }");
  EXPECT_FALSE(P.ok());
  EXPECT_NE(P.error().find("label"), std::string::npos);
}

TEST(GilParser, CallWithStringCallee) {
  Result<Prog> P = parseGilProg("proc f(x) { r := \"g\"(x + 1); return r; }");
  ASSERT_TRUE(P.ok()) << P.error();
  const Cmd &C = P->find("f")->Body[0];
  EXPECT_EQ(C.Kind, CmdKind::Call);
  EXPECT_EQ(C.E.litValue().asStr().str(), "g");
}
