//===- mc/parser.h - MC parser ---------------------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for MC's concrete syntax (see ast.h for the grammar by example).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_MC_PARSER_H
#define GILLIAN_MC_PARSER_H

#include "mc/ast.h"
#include "support/result.h"

#include <string_view>

namespace gillian::mc {

Result<CProgram> parseMc(std::string_view Source);

} // namespace gillian::mc

#endif // GILLIAN_MC_PARSER_H
