//===- while_lang/ast.h - The While language (§2.2) ------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example: a simple While language with static
/// objects.
///
///   s ::= x := e | if (e) {s} else {s} | while (e) {s} | s; s
///       | x := f(ē) | return e | assume e | assert e
///       | x := {p: e, ...} | dispose e | x := e.p | e.p := e'
///
/// plus symbolic-input forms (x := fresh_int() etc.) that compile to the
/// GIL iSym command with a typing assumption. Expressions are shared with
/// GIL, as in the paper ("the semantics of expressions and the variable
/// store coincide for While and GIL").
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_WHILE_AST_H
#define GILLIAN_WHILE_AST_H

#include "gil/expr.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace gillian::whilelang {

enum class StmtKind : uint8_t {
  Assign,  ///< x := e
  If,      ///< if (e) { then } else { els }
  While,   ///< while (e) { body }
  Call,    ///< x := f(e1, ..., en)
  Return,  ///< return e
  Assume,  ///< assume (e)
  Assert,  ///< assert (e)
  New,     ///< x := { p1: e1, ..., pn: en }
  Dispose, ///< dispose e
  Lookup,  ///< x := e.p
  Mutate,  ///< e.p := e'
  Fresh,   ///< x := fresh_T()   (symbolic input)
};

struct Stmt {
  StmtKind Kind;
  InternedString X;        ///< target variable / callee name (Call)
  InternedString Callee;   ///< Call only
  InternedString Prop;     ///< Lookup/Mutate property name
  Expr E;                  ///< main expression
  Expr E2;                 ///< Mutate value
  std::vector<Expr> Args;  ///< Call arguments
  std::vector<std::pair<InternedString, Expr>> Props; ///< New
  std::vector<Stmt> Then;  ///< If-then / While-body
  std::vector<Stmt> Else;  ///< If-else
  std::optional<GilType> FreshType; ///< Fresh: constraint type (nullopt = any)
};

struct FuncDecl {
  InternedString Name;
  std::vector<InternedString> Params;
  std::vector<Stmt> Body;
};

struct Program {
  std::vector<FuncDecl> Funcs;

  const FuncDecl *find(std::string_view Name) const {
    for (const FuncDecl &F : Funcs)
      if (F.Name.str() == Name)
        return &F;
    return nullptr;
  }
};

} // namespace gillian::whilelang

#endif // GILLIAN_WHILE_AST_H
