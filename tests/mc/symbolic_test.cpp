//===- tests/mc/symbolic_test.cpp -----------------------------------------===//
//
// Symbolic testing of MC: symbolic scalars through the byte-level memory,
// bounds checks with symbolic indices (the off-by-one detection pattern
// of §4.2), and the SLoad branching behaviour.
//
//===----------------------------------------------------------------------===//

#include "mc/compiler.h"

#include "engine/test_runner.h"
#include "mc/memory.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::mc;

namespace {

SymbolicTestResult runSym(std::string_view Src,
                          EngineOptions Opts = EngineOptions()) {
  Result<Prog> P = compileMcSource(Src);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  Solver Slv(Opts.Solver);
  return runSymbolicTest<McSMem>(*P, "main", Opts, Slv);
}

} // namespace

TEST(McSymbolic, SymbolicScalarRoundTripsThroughMemory) {
  SymbolicTestResult R = runSym(R"(
    fn main() -> i64 {
      var v: i64 = symb_i64();
      var p: ptr<i64> = alloc(i64, 1);
      p[0] = v;
      assert(p[0] == v);
      return p[0];
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
}

TEST(McSymbolic, SymbolicFloatFragments) {
  SymbolicTestResult R = runSym(R"(
    fn main() -> f64 {
      var v: f64 = symb_f64();
      var p: ptr<f64> = alloc(f64, 2);
      p[0] = v;
      p[1] = p[0];
      assert(p[1] == v);
      return p[1];
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
}

TEST(McSymbolic, SymbolicIndexInBoundsVerifies) {
  SymbolicTestResult R = runSym(R"(
    fn main() -> i64 {
      var i: i64 = symb_i64();
      assume(0 <= i && i < 4);
      var p: ptr<i64> = alloc(i64, 4);
      p[0] = 0; p[1] = 10; p[2] = 20; p[3] = 30;
      assert(p[i] == i * 10);
      return p[i];
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
  EXPECT_GE(R.PathsReturned, 4u) << "one world per candidate offset";
}

TEST(McSymbolic, SymbolicIndexOffByOneIsCaught) {
  // The classic §4.2 finding: an index range one past the end.
  SymbolicTestResult R = runSym(R"(
    fn main() -> i64 {
      var i: i64 = symb_i64();
      assume(0 <= i && i <= 4);  // should be < 4
      var p: ptr<i64> = alloc(i64, 4);
      p[i] = 1;
      return 0;
    })");
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.hasConfirmedBug());
  bool FoundOob = false;
  for (const BugReport &B : R.Bugs)
    FoundOob |= B.Message.find("out-of-bounds") != std::string::npos;
  EXPECT_TRUE(FoundOob) << R.Bugs[0].Message;
}

TEST(McSymbolic, BranchOnSymbolicValueThroughHeap) {
  SymbolicTestResult R = runSym(R"(
    struct Node { val: i64; next: ptr<Node>; }
    fn main() -> i64 {
      var v: i64 = symb_i64();
      var n: ptr<Node> = alloc(Node, 1);
      n->val = v;
      n->next = null;
      if (n->val < 0) { return -1; }
      return 1;
    })");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.PathsReturned, 2u);
}

TEST(McSymbolic, GuardedFreePathsExploreBothWorlds) {
  SymbolicTestResult R = runSym(R"(
    fn main() -> i64 {
      var c: i64 = symb_i64();
      var p: ptr<i64> = alloc(i64, 1);
      p[0] = 1;
      if (c == 0) { free(p); }
      if (c != 0) { assert(p[0] == 1); }
      return 0;
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
}

TEST(McSymbolic, UseAfterFreeOnOnePathIsCaught) {
  SymbolicTestResult R = runSym(R"(
    fn main() -> i64 {
      var c: i64 = symb_i64();
      var p: ptr<i64> = alloc(i64, 1);
      p[0] = 1;
      if (c == 0) { free(p); }
      return p[0];  // faults exactly when c == 0
    })");
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.hasConfirmedBug());
  EXPECT_GE(R.PathsReturned, 1u) << "the healthy world still returns";
  EXPECT_NE(R.Bugs[0].Message.find("after free"), std::string::npos);
}

TEST(McSymbolic, DivisionGuardBranchesOnSymbolicDivisor) {
  SymbolicTestResult R = runSym(R"(
    fn main() -> i64 {
      var d: i64 = symb_i64();
      assume(-1 <= d && d <= 1);
      return 10 / d;
    })");
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.hasConfirmedBug());
  EXPECT_NE(R.Bugs[0].Message.find("division by zero"), std::string::npos);
  EXPECT_EQ(R.PathsReturned, 1u)
      << "one symbolic return path covers every nonzero divisor";
}

TEST(McSymbolic, UninitialisedReadDetectedSymbolically) {
  SymbolicTestResult R = runSym(R"(
    fn main() -> i64 {
      var c: i64 = symb_i64();
      var p: ptr<i64> = alloc(i64, 2);
      p[0] = 1;
      if (c == 0) { p[1] = 2; }
      return p[0] + p[1];
    })");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Bugs[0].Message.find("uninitialised"), std::string::npos)
      << R.Bugs[0].Message;
}

TEST(McSymbolic, LegacyConfigAgrees) {
  const char *Src = R"(
    fn main() -> i64 {
      var v: i64 = symb_i64();
      assume(0 <= v && v < 3);
      var p: ptr<i64> = alloc(i64, 3);
      p[0] = 1; p[1] = 2; p[2] = 3;
      assert(p[v] == v + 1);
      return 0;
    })";
  SymbolicTestResult Fast = runSym(Src);
  SymbolicTestResult Slow = runSym(Src, EngineOptions::legacyJaVerT2());
  EXPECT_EQ(Fast.ok(), Slow.ok());
  EXPECT_EQ(Fast.PathsReturned, Slow.PathsReturned);
}
