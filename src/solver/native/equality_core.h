//===- solver/native/equality_core.h - Union-find equality core *- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The theory side of the native solver (DESIGN.md §4f): an undoable
/// union-find over interned terms with congruence closure and a
/// disequality store, so disequality chains — the query class behind the
/// `bst`/`pqueue` outliers of EXPERIMENTS.md — are decided without an SMT
/// round-trip.
///
/// Terms are interned structurally from logical expressions: literals,
/// variables, and applications (operator + child terms). The core asserts
/// equalities and disequalities and reports conflicts from three sound
/// sources only:
///
///  * two *distinct literal values* merged into one class (GIL equality is
///    structural Value equality — including `NaN == NaN` being true — so
///    distinct `Value`s really are unequal under every model);
///  * a disequality whose two sides land in one class;
///  * congruence: identical operators applied to pairwise-equal arguments
///    are equal, because GIL evaluation is deterministic — merging them
///    can then surface either conflict above.
///
/// Everything is recorded on an undo trail; `mark()`/`undoTo()` give the
/// clause store's backtracking and the session's push/pop frames O(delta)
/// rollback. Interning is monotone (never undone): a stale term is just an
/// isolated singleton class, and the session resets wholesale.
///
/// The core never claims satisfiability — the session builds a candidate
/// model from the final classes and verifies it by evaluation, which is
/// what keeps false Sat impossible by construction.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_NATIVE_EQUALITY_CORE_H
#define GILLIAN_SOLVER_NATIVE_EQUALITY_CORE_H

#include "gil/expr.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace gillian::native {

using TermId = uint32_t;
inline constexpr TermId InvalidTerm = 0xFFFFFFFFu;

class EqualityCore {
public:
  /// Interns \p E structurally (same expression → same TermId). Monotone:
  /// interning is never rolled back by undoTo(). The Expr is kept alive by
  /// the term table, so identity-based reasoning stays valid.
  TermId intern(const Expr &E);

  /// Asserts A = B (with congruence closure). Returns false on conflict;
  /// the caller must then undoTo() the mark it took beforehand — partial
  /// merges performed while discovering the conflict stay on the trail.
  bool assertEq(TermId A, TermId B);

  /// Asserts A ≠ B. Returns false when A and B are already in one class.
  bool assertDiseq(TermId A, TermId B);

  bool impliedEqual(TermId A, TermId B) const { return find(A) == find(B); }
  /// Known-unequal: recorded disequality between the classes, or the two
  /// classes are pinned to distinct literal values.
  bool impliedDistinct(TermId A, TermId B) const;

  size_t mark() const { return Trail.size(); }
  void undoTo(size_t Mark);
  /// Drops every term, class and disequality (session reset).
  void clear();

  TermId find(TermId T) const;
  /// The literal Value this class is pinned to, or nullptr.
  const Value *classValue(TermId T) const;
  const Expr &termExpr(TermId T) const { return Terms[T].E; }
  size_t numTerms() const { return Terms.size(); }

  /// Representatives of classes recorded unequal to T's class, in
  /// deterministic (insertion) order; duplicates possible.
  void diseqNeighborReps(TermId T, std::vector<TermId> &Out) const;

private:
  struct Term {
    Expr E;
    uint64_t OpSig = 0;           ///< nonzero for applications
    std::vector<TermId> Children; ///< application arguments
  };
  struct TrailEntry {
    enum Kind : uint8_t { Union, Diseq } K;
    TermId ChildRoot = InvalidTerm;  ///< Union: re-root to itself
    TermId ParentRoot = InvalidTerm; ///< Union: restore rank / class value
    uint32_t OldRank = 0;
    TermId OldClassLit = InvalidTerm;
  };

  /// Merges the classes of two representatives (no congruence). Performs
  /// the sound conflict pre-checks and mutates nothing on failure.
  bool unionReps(TermId RA, TermId RB);
  /// Congruence fixpoint over all application terms; false on conflict.
  bool propagateCongruence();

  std::vector<Term> Terms;
  std::vector<TermId> Parent;
  std::vector<uint32_t> Rank;
  /// Per-representative: term id of the literal pinned to the class.
  std::vector<TermId> ClassLit;
  std::vector<TermId> Apps; ///< all application terms
  std::vector<std::pair<TermId, TermId>> Diseqs;
  std::vector<TrailEntry> Trail;
  std::unordered_map<Expr, TermId> InternMap;
};

} // namespace gillian::native

#endif // GILLIAN_SOLVER_NATIVE_EQUALITY_CORE_H
