//===- tests/support/cow_map_test.cpp -------------------------------------===//

#include "support/cow_map.h"

#include <gtest/gtest.h>

#include <string>

using namespace gillian;

TEST(CowMap, BasicSetLookup) {
  CowMap<int, std::string> M;
  EXPECT_TRUE(M.empty());
  M.set(1, "one");
  M.set(2, "two");
  ASSERT_NE(M.lookup(1), nullptr);
  EXPECT_EQ(*M.lookup(1), "one");
  EXPECT_EQ(M.lookup(3), nullptr);
  EXPECT_EQ(M.size(), 2u);
}

TEST(CowMap, OverwriteReplaces) {
  CowMap<int, int> M;
  M.set(7, 1);
  M.set(7, 2);
  EXPECT_EQ(*M.lookup(7), 2);
  EXPECT_EQ(M.size(), 1u);
}

TEST(CowMap, CopyIsShared) {
  CowMap<int, int> A;
  A.set(1, 10);
  CowMap<int, int> B = A;
  EXPECT_TRUE(A.sharesStorage());
  EXPECT_TRUE(B.sharesStorage());
}

TEST(CowMap, WriteDetachesOnlyTheWriter) {
  CowMap<int, int> A;
  A.set(1, 10);
  CowMap<int, int> B = A;
  B.set(2, 20);
  EXPECT_EQ(A.lookup(2), nullptr) << "write to copy must not leak back";
  EXPECT_EQ(*B.lookup(1), 10);
  EXPECT_EQ(*B.lookup(2), 20);
  EXPECT_FALSE(A.sharesStorage());
  EXPECT_FALSE(B.sharesStorage());
}

TEST(CowMap, EraseDetaches) {
  CowMap<int, int> A;
  A.set(1, 10);
  A.set(2, 20);
  CowMap<int, int> B = A;
  EXPECT_TRUE(B.erase(1));
  EXPECT_FALSE(B.contains(1));
  EXPECT_TRUE(A.contains(1)) << "erase on copy must not affect original";
  EXPECT_FALSE(B.erase(99));
}

TEST(CowMap, EraseMissingDoesNotDetach) {
  CowMap<int, int> A;
  A.set(1, 10);
  CowMap<int, int> B = A;
  EXPECT_FALSE(B.erase(42));
  EXPECT_TRUE(B.sharesStorage()) << "no-op erase should keep sharing";
}

TEST(CowMap, EqualityStructural) {
  CowMap<int, int> A, B;
  A.set(1, 1);
  B.set(1, 1);
  EXPECT_TRUE(A == B);
  B.set(2, 2);
  EXPECT_FALSE(A == B);
}

TEST(CowMap, IterationIsOrdered) {
  CowMap<int, int> M;
  M.set(3, 30);
  M.set(1, 10);
  M.set(2, 20);
  int Prev = 0;
  for (const auto &[K, V] : M) {
    EXPECT_LT(Prev, K);
    EXPECT_EQ(V, K * 10);
    Prev = K;
  }
}

TEST(CowMap, DeepCopyChainIndependence) {
  // A -> B -> C each diverge at different keys; all must stay independent.
  CowMap<int, int> A;
  A.set(0, 0);
  CowMap<int, int> B = A;
  B.set(1, 1);
  CowMap<int, int> C = B;
  C.set(2, 2);
  EXPECT_EQ(A.size(), 1u);
  EXPECT_EQ(B.size(), 2u);
  EXPECT_EQ(C.size(), 3u);
}
