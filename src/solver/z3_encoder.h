//===- solver/z3_encoder.h - GIL→Z3 term encoding (private) ----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GIL→Z3 term encoder shared by the cold backend (z3_backend.cpp) and
/// the incremental session layer (incremental_session.cpp). This header is
/// *private* to the solver library: it exposes z3++ types, so it must only
/// be included from .cpp files compiled with GILLIAN_HAVE_Z3 (the define is
/// PRIVATE to gillian_solver; public headers never leak Z3).
///
/// The encoder maps Int to SMT Int, Num to Real, Bool to Bool, Str to
/// String, and Sym/Type/Proc to tagged integers. Subterms without an
/// encoding throw Unsupported, caught at conjunct granularity by callers so
/// the conjunct is dropped rather than the query aborted.
///
/// Z3EncodingMemo hash-conses translations per (expression identity,
/// TypeEnv fingerprint): expression nodes are immutable and shared, so the
/// node address plus the type assignments it was encoded under fully
/// determine the Z3 term. The fingerprint is only a fast filter — each
/// entry stores the type assignments its encoding depended on and a
/// lookup verifies them, so a fingerprint collision can never resurrect a
/// term encoded under different sorts. Each memo belongs to one thread's
/// context and must never outlive it.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_Z3_ENCODER_H
#define GILLIAN_SOLVER_Z3_ENCODER_H

#ifdef GILLIAN_HAVE_Z3

#include "solver/type_infer.h"

#include <z3++.h>

#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gillian {

/// One long-lived Z3 context *per thread*: constants intern per spelling,
/// and context creation dominates small-query latency, but Z3 contexts are
/// not thread-safe — so each exploration worker gets its own, lazily, for
/// the lifetime of its thread. Both the cold backend and the incremental
/// sessions of a thread share this context (Z3 handles created against it
/// must be destructed on the same thread, before thread exit).
z3::context &threadZ3Context();

/// Thrown (internally only) when a subterm has no Z3 encoding; caught at
/// conjunct granularity so the conjunct is dropped rather than the query
/// aborted.
struct Unsupported {
  std::string What;
};

/// Hash-consed GIL→Z3 translations, keyed on expression identity (shared
/// node address) plus the TypeEnv fingerprint the term was encoded under.
/// Entries hold the Expr so the node stays alive: a recycled address can
/// never alias a dead key. Thread-confined (holds z3::expr handles).
///
/// The memo is soundness-critical — a wrong hit reuses a term whose
/// constants were created under different sorts, and Z3 treats same-name
/// different-sort constants as distinct — and it outlives session
/// hard-resets, so the environment fingerprint alone is not trusted as
/// equality. Each entry also records the type assignments its encoding
/// depended on (the entry expression's free logical variables, nullopt =
/// unconstrained at encode time), and a lookup only hits when the current
/// environment agrees on every one of them.
class Z3EncodingMemo {
public:
  const z3::expr *lookup(const Expr &E, const TypeEnv &Types) const {
    auto It = Map.find(Key{E.identity(), Types.hash()});
    if (It == Map.end())
      return nullptr;
    for (const auto &[Var, T] : It->second.Assumptions)
      if (Types.lookup(Var) != T)
        return nullptr; // fingerprint collision across distinct typings
    return &It->second.Term;
  }

  void insert(const Expr &E, const TypeEnv &Types, const z3::expr &T) {
    // Unbounded growth guard, same policy as the simplifier memo: a long
    // run across many suites just starts a fresh table.
    if (Map.size() >= MaxEntries)
      Map.clear();
    Entry En{E, T, {}};
    std::set<InternedString> Vars;
    E.collectLVars(Vars);
    En.Assumptions.reserve(Vars.size());
    for (InternedString V : Vars)
      En.Assumptions.emplace_back(V, Types.lookup(V));
    Map.emplace(Key{E.identity(), Types.hash()}, std::move(En));
  }

  void clear() { Map.clear(); }
  size_t size() const { return Map.size(); }

  uint64_t Hits = 0, Misses = 0;

private:
  static constexpr size_t MaxEntries = 1u << 16;

  struct Key {
    const void *Id;
    uint64_t EnvHash;
    bool operator==(const Key &O) const {
      return Id == O.Id && EnvHash == O.EnvHash;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = reinterpret_cast<uintptr_t>(K.Id);
      H ^= K.EnvHash + 0x9E3779B97F4A7C15ull + (H << 6) + (H >> 2);
      return static_cast<size_t>(H);
    }
  };
  struct Entry {
    Expr Keep; ///< pins the node identity alive
    z3::expr Term;
    /// The var→type assignments the encoding depends on, verified on
    /// every lookup (see class comment).
    std::vector<std::pair<InternedString, std::optional<GilType>>>
        Assumptions;
  };
  std::unordered_map<Key, Entry, KeyHash> Map;
};

/// Encodes GIL expressions of one query into Z3 terms. When a memo is
/// attached, every successfully encoded subterm is recorded/reused under
/// the environment fingerprint (memo hits skip symbol-code harvesting, so
/// model extraction must run without a memo).
class Encoder {
public:
  Encoder(z3::context &Ctx, const TypeEnv &Types,
          Z3EncodingMemo *Memo = nullptr)
      : Ctx(Ctx), Types(Types), Memo(Memo) {}

  /// The inferred GIL type of \p E; throws Unsupported when undetermined.
  GilType typeOf(const Expr &E) {
    auto T = staticType(E, Types);
    if (!T)
      throw Unsupported{"untypeable term " + E.toString()};
    return *T;
  }

  z3::expr var(InternedString Name, GilType T) {
    std::string N(Name.str());
    switch (T) {
    case GilType::Int: return Ctx.int_const(N.c_str());
    case GilType::Num: return Ctx.real_const(N.c_str());
    case GilType::Bool: return Ctx.bool_const(N.c_str());
    case GilType::Str: return Ctx.constant(N.c_str(), Ctx.string_sort());
    case GilType::Sym:
    case GilType::Type:
    case GilType::Proc:
      // Tagged-integer encodings share the Int sort; tags never mix
      // because equality across differently-typed terms folds to false
      // before reaching Z3.
      return Ctx.int_const(N.c_str());
    case GilType::List:
      throw Unsupported{"list-typed logical variable " + N};
    }
    throw Unsupported{"bad type"};
  }

  z3::expr lit(const Value &V) {
    switch (V.type()) {
    case GilType::Int:
      return Ctx.int_val(static_cast<int64_t>(V.asInt()));
    case GilType::Num: {
      double D = V.asNum();
      if (std::isnan(D) || std::isinf(D))
        throw Unsupported{"non-finite Num literal"};
      // Exact binary-to-rational conversion.
      int Exp = 0;
      double Frac = std::frexp(D, &Exp); // D = Frac * 2^Exp, |Frac| in [0.5,1)
      int64_t Mant = static_cast<int64_t>(std::ldexp(Frac, 53));
      Exp -= 53;
      z3::expr M = Ctx.real_val(Mant);
      z3::expr Two = Ctx.real_val(2);
      z3::expr Scale = Ctx.real_val(1);
      for (int I = 0; I < std::abs(Exp); ++I)
        Scale = Scale * Two;
      return Exp >= 0 ? M * Scale : M / Scale;
    }
    case GilType::Bool:
      return Ctx.bool_val(V.asBool());
    case GilType::Str:
      return Ctx.string_val(std::string(V.asStr().str()));
    case GilType::Sym:
      SymByCode[V.asSym().id()] = V.asSym();
      return Ctx.int_val(static_cast<int64_t>(V.asSym().id()));
    case GilType::Type:
      return Ctx.int_val(static_cast<int64_t>(V.asType()));
    case GilType::Proc:
      return Ctx.int_val(static_cast<int64_t>(V.asProc().id()));
    case GilType::List:
      throw Unsupported{"list literal in SMT position"};
    }
    throw Unsupported{"bad literal"};
  }

  /// Widens an Int term to Real when the other operand is Num.
  z3::expr widen(z3::expr E, GilType From, GilType To) {
    if (From == GilType::Int && To == GilType::Num)
      return z3::to_real(E);
    return E;
  }

  z3::expr encode(const Expr &E) {
    if (Memo) {
      if (const z3::expr *Hit = Memo->lookup(E, Types)) {
        ++Memo->Hits;
        return *Hit;
      }
    }
    z3::expr T = encodeUncached(E);
    if (Memo) {
      ++Memo->Misses;
      Memo->insert(E, Types, T);
    }
    return T;
  }

  const std::map<uint32_t, InternedString> &symbolCodes() const {
    return SymByCode;
  }

private:
  z3::expr encodeUncached(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Lit:
      return lit(E.litValue());
    case ExprKind::LVar:
      return var(E.varName(), Types.lookup(E.varName()).value_or(GilType::Int));
    case ExprKind::PVar:
      throw Unsupported{"program variable in pure formula"};
    case ExprKind::List:
      throw Unsupported{"list construction in SMT position"};
    case ExprKind::UnOp:
      return encodeUnOp(E);
    case ExprKind::BinOp:
      return encodeBinOp(E);
    }
    throw Unsupported{"bad expression"};
  }

  z3::expr encodeUnOp(const Expr &E) {
    const Expr &C = E.child(0);
    switch (E.unOpKind()) {
    case UnOpKind::Neg:
      return -encode(C);
    case UnOpKind::Not:
      return !encode(C);
    case UnOpKind::ToNum: {
      GilType T = typeOf(C);
      z3::expr X = encode(C);
      return T == GilType::Int ? z3::to_real(X) : X;
    }
    case UnOpKind::ToInt: {
      GilType T = typeOf(C);
      z3::expr X = encode(C);
      if (T == GilType::Int)
        return X;
      // GIL to_int truncates toward zero; SMT real2int floors.
      auto Real2Int = [&](const z3::expr &R) {
        Z3_ast A = Z3_mk_real2int(Ctx, R);
        Ctx.check_error();
        return z3::expr(Ctx, A);
      };
      z3::expr F = Real2Int(X);
      return z3::ite(X >= Ctx.real_val(0), F, -Real2Int(-X));
    }
    case UnOpKind::StrLen: {
      z3::expr X = encode(C);
      return X.length();
    }
    case UnOpKind::TypeOf: {
      // Only reachable for terms whose type is statically known (other
      // cases fold earlier or bail).
      GilType T = typeOf(C);
      return Ctx.int_val(static_cast<int64_t>(T));
    }
    default:
      throw Unsupported{std::string("unary ") +
                        std::string(unOpSpelling(E.unOpKind()))};
    }
  }

  /// Truncating division/modulo over SMT's Euclidean div/mod.
  z3::expr truncDiv(z3::expr A, z3::expr B, bool WantMod) {
    z3::expr Q = A / B;          // SMT-LIB Euclidean quotient over Int
    z3::expr R = z3::mod(A, B);  // non-negative remainder
    z3::expr Zero = Ctx.int_val(0);
    z3::expr One = Ctx.int_val(1);
    z3::expr Qt = z3::ite(
        R == Zero, Q,
        z3::ite(A < Zero, z3::ite(B > Zero, Q + One, Q - One), Q));
    if (!WantMod)
      return Qt;
    return A - B * Qt;
  }

  z3::expr encodeBinOp(const Expr &E) {
    BinOpKind Op = E.binOpKind();
    const Expr &EA = E.child(0), &EB = E.child(1);
    switch (Op) {
    case BinOpKind::And:
      return encode(EA) && encode(EB);
    case BinOpKind::Or:
      return encode(EA) || encode(EB);
    case BinOpKind::Eq: {
      auto TA = staticType(EA, Types), TB = staticType(EB, Types);
      if (!TA || !TB)
        throw Unsupported{"equality between untyped terms"};
      if (*TA != *TB)
        return Ctx.bool_val(false); // GIL equality is structural
      if (*TA == GilType::List)
        throw Unsupported{"list equality (should have been decomposed)"};
      return encode(EA) == encode(EB);
    }
    case BinOpKind::Lt:
    case BinOpKind::Le: {
      GilType TA = typeOf(EA), TB = typeOf(EB);
      if (TA == GilType::Str || TB == GilType::Str)
        throw Unsupported{"string comparison"};
      GilType W = (TA == GilType::Num || TB == GilType::Num) ? GilType::Num
                                                             : GilType::Int;
      z3::expr A = widen(encode(EA), TA, W);
      z3::expr B = widen(encode(EB), TB, W);
      return Op == BinOpKind::Lt ? A < B : A <= B;
    }
    case BinOpKind::Add:
    case BinOpKind::Sub:
    case BinOpKind::Mul:
    case BinOpKind::Div: {
      GilType TA = typeOf(EA), TB = typeOf(EB);
      GilType W = (TA == GilType::Num || TB == GilType::Num) ? GilType::Num
                                                             : GilType::Int;
      z3::expr A = widen(encode(EA), TA, W);
      z3::expr B = widen(encode(EB), TB, W);
      switch (Op) {
      case BinOpKind::Add: return A + B;
      case BinOpKind::Sub: return A - B;
      case BinOpKind::Mul: return A * B;
      case BinOpKind::Div:
        // Int division is truncating in GIL; Real division is exact.
        return W == GilType::Int ? truncDiv(A, B, /*WantMod=*/false) : A / B;
      default: break;
      }
      throw Unsupported{"unreachable"};
    }
    case BinOpKind::Mod: {
      GilType TA = typeOf(EA), TB = typeOf(EB);
      if (TA != GilType::Int || TB != GilType::Int)
        throw Unsupported{"non-integer modulo"};
      return truncDiv(encode(EA), encode(EB), /*WantMod=*/true);
    }
    case BinOpKind::StrCat: {
      z3::expr A = encode(EA), B = encode(EB);
      z3::expr_vector Parts(Ctx);
      Parts.push_back(A);
      Parts.push_back(B);
      return z3::concat(Parts);
    }
    default:
      throw Unsupported{std::string("binary ") +
                        std::string(binOpSpelling(Op))};
    }
  }

  z3::context &Ctx;
  const TypeEnv &Types;
  Z3EncodingMemo *Memo;
  std::map<uint32_t, InternedString> SymByCode;
};

} // namespace gillian

#endif // GILLIAN_HAVE_Z3

#endif // GILLIAN_SOLVER_Z3_ENCODER_H
