# Empty dependencies file for js_bug_hunt.
# This may be replaced when dependencies are built.
