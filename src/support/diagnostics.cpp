//===- support/diagnostics.cpp -------------------------------------------===//

#include "support/diagnostics.h"

using namespace gillian;

std::string gillian::diagAt(int Line, int Col, const std::string &Message) {
  return "line " + std::to_string(Line) + ":" + std::to_string(Col) + ": " +
         Message;
}

std::string gillian::diagAtToken(const Token &Tok, const std::string &Message) {
  std::string Where;
  switch (Tok.Kind) {
  case TokenKind::Eof:
    Where = " (at end of input)";
    break;
  case TokenKind::Error:
    Where = " (" + Tok.Text + ")";
    break;
  default:
    Where = " (at '" + Tok.Text + "')";
    break;
  }
  return diagAt(Tok.Line, Tok.Col, Message + Where);
}
