//===- tests/obs/introspect_test.cpp --------------------------------------===//
//
// Unit tests of the live-introspection layer: HTTP request parsing
// (including the malformed shapes the server must 400), the Prometheus
// text-exposition writer (TYPE lines, counter suffixing, label escaping),
// the /metrics exposition's format and monotonicity across scrapes, the
// serve-spec parser, the rolling rate tracker, the heartbeat JSONL
// sampler, the live-source registry, and a real loopback round-trip
// through the poll-based server.
//
//===----------------------------------------------------------------------===//

#include "obs/introspect/http_server.h"
#include "obs/introspect/introspect_server.h"
#include "obs/introspect/metrics_registry.h"
#include "obs/introspect/prometheus.h"
#include "obs/introspect/sampler.h"
#include "obs/json_writer.h"
#include "obs/progress.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace gillian;
using namespace gillian::obs;

namespace {

//===----------------------------------------------------------------------===//
// parseHttpRequest
//===----------------------------------------------------------------------===//

TEST(HttpParseTest, ParsesGetWithQueryAndHeaders) {
  HttpRequest R;
  ASSERT_TRUE(parseHttpRequest(
      "GET /metrics?seconds=5 HTTP/1.1\r\nHost: localhost:9090\r\n"
      "Accept: */*\r\n\r\n",
      R));
  EXPECT_EQ(R.Method, "GET");
  EXPECT_EQ(R.Target, "/metrics");
  EXPECT_EQ(R.Query, "seconds=5");
  EXPECT_EQ(R.Version, "HTTP/1.1");
  EXPECT_EQ(R.header("host"), "localhost:9090");
  EXPECT_EQ(R.header("accept"), "*/*");
  EXPECT_EQ(R.header("absent"), "");
  EXPECT_TRUE(R.KeepAlive); // HTTP/1.1 defaults to keep-alive
}

TEST(HttpParseTest, KeepAliveFollowsVersionAndConnectionHeader) {
  HttpRequest R;
  ASSERT_TRUE(parseHttpRequest("GET / HTTP/1.1\r\nConnection: close\r\n\r\n",
                               R));
  EXPECT_FALSE(R.KeepAlive);
  ASSERT_TRUE(parseHttpRequest("GET / HTTP/1.0\r\n\r\n", R));
  EXPECT_FALSE(R.KeepAlive); // HTTP/1.0 defaults to close
  ASSERT_TRUE(parseHttpRequest(
      "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", R));
  EXPECT_TRUE(R.KeepAlive);
}

TEST(HttpParseTest, ToleratesBareLfLineEndings) {
  HttpRequest R;
  ASSERT_TRUE(parseHttpRequest("GET /healthz HTTP/1.1\nHost: a\n\n", R));
  EXPECT_EQ(R.Target, "/healthz");
  EXPECT_EQ(R.header("host"), "a");
}

TEST(HttpParseTest, RejectsMalformedRequests) {
  HttpRequest R;
  // Too few request-line tokens.
  EXPECT_FALSE(parseHttpRequest("GET\r\n\r\n", R));
  EXPECT_FALSE(parseHttpRequest("GET /x\r\n\r\n", R));
  // Version token is not HTTP/*.
  EXPECT_FALSE(parseHttpRequest("GET / FTP/1.0\r\n\r\n", R));
  // Embedded NUL.
  EXPECT_FALSE(parseHttpRequest(
      std::string_view("GET /\0 HTTP/1.1\r\n\r\n", 20), R));
  // Header without a colon, and a space inside a header name.
  EXPECT_FALSE(parseHttpRequest(
      "GET / HTTP/1.1\r\nno colon here\r\n\r\n", R));
  EXPECT_FALSE(parseHttpRequest(
      "GET / HTTP/1.1\r\nBad Header : x\r\n\r\n", R));
  // Requests advertising a body are out of protocol.
  EXPECT_FALSE(parseHttpRequest(
      "GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\n", R));
  EXPECT_FALSE(parseHttpRequest(
      "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", R));
  // No terminating blank line.
  EXPECT_FALSE(parseHttpRequest("GET / HTTP/1.1\r\nHost: a\r\n", R));
  // Content-Length: 0 is fine (no body).
  EXPECT_TRUE(parseHttpRequest(
      "GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n", R));
}

//===----------------------------------------------------------------------===//
// Prometheus exposition writer
//===----------------------------------------------------------------------===//

TEST(PromWriterTest, CounterSuffixAndSingleTypeLine) {
  PromWriter W;
  W.counter("gillian_demo_events", 3, {{"kind", "a"}});
  W.counter("gillian_demo_events", 4, {{"kind", "b"}});
  std::string Out = W.take();
  // One TYPE line for the family, before its first sample; both series
  // carry the _total suffix.
  EXPECT_EQ(Out, "# TYPE gillian_demo_events_total counter\n"
                 "gillian_demo_events_total{kind=\"a\"} 3\n"
                 "gillian_demo_events_total{kind=\"b\"} 4\n");
}

TEST(PromWriterTest, GaugeKeepsBareNameAndDoubleFormat) {
  PromWriter W;
  W.gauge("gillian_demo_depth", static_cast<uint64_t>(7));
  W.gauge("gillian_demo_rate", 2.5);
  std::string Out = W.take();
  EXPECT_NE(Out.find("# TYPE gillian_demo_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(Out.find("gillian_demo_depth 7\n"), std::string::npos);
  EXPECT_NE(Out.find("gillian_demo_rate 2.5\n"), std::string::npos);
  EXPECT_EQ(Out.find("_total"), std::string::npos);
}

TEST(PromWriterTest, EscapesLabelValues) {
  EXPECT_EQ(promEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(promEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(promEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(promEscapeLabelValue("two\nlines"), "two\\nlines");
  PromWriter W;
  W.counter("gillian_demo_x", 1, {{"proc", "we\"ird\\name"}});
  EXPECT_NE(W.str().find("proc=\"we\\\"ird\\\\name\""), std::string::npos);
}

TEST(PromWriterTest, SanitizesMetricNameComponents) {
  EXPECT_EQ(promSanitizeName("cmds_executed"), "cmds_executed");
  EXPECT_EQ(promSanitizeName("per-worker.depth"), "per_worker_depth");
  EXPECT_EQ(promSanitizeName("9lives"), "_9lives");
  EXPECT_EQ(promSanitizeName(""), "_");
}

struct PromProbeStats : CounterSet<PromProbeStats> {
  Counter Hits{*this, "hits", "promprobe"};
  Gauge Depth{*this, "depth", "promprobe"};
};

TEST(PromWriterTest, CounterSetBridgeEmitsByFieldKind) {
  PromProbeStats S;
  S.Hits += 11;
  S.Depth.set(4);
  PromWriter W;
  counterSetInto(W, S, {{"suite", "t"}});
  std::string Out = W.take();
  EXPECT_NE(Out.find("# TYPE gillian_promprobe_hits_total counter\n"),
            std::string::npos);
  EXPECT_NE(Out.find("gillian_promprobe_hits_total{suite=\"t\"} 11\n"),
            std::string::npos);
  EXPECT_NE(Out.find("# TYPE gillian_promprobe_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(Out.find("gillian_promprobe_depth{suite=\"t\"} 4\n"),
            std::string::npos);
}

/// First sample value of \p Name (exact unlabelled series) in \p Expo,
/// or UINT64_MAX when absent.
uint64_t metricValue(const std::string &Expo, const std::string &Name) {
  std::string Needle = Name + " ";
  size_t Pos = 0;
  while ((Pos = Expo.find(Needle, Pos)) != std::string::npos) {
    if (Pos == 0 || Expo[Pos - 1] == '\n')
      return std::strtoull(Expo.c_str() + Pos + Needle.size(), nullptr, 10);
    Pos += Needle.size();
  }
  return UINT64_MAX;
}

TEST(MetricsExpositionTest, WellFormedAndMonotoneAcrossScrapes) {
  std::string First = metricsExposition();
  // Every line is either a comment or "name[{labels}] value".
  size_t Start = 0;
  while (Start < First.size()) {
    size_t End = First.find('\n', Start);
    ASSERT_NE(End, std::string::npos) << "unterminated exposition line";
    std::string_view Line(First.c_str() + Start, End - Start);
    if (!Line.empty() && Line[0] != '#') {
      size_t Sp = Line.rfind(' ');
      ASSERT_NE(Sp, std::string_view::npos) << Line;
      EXPECT_NE(Sp, 0u) << Line;
      EXPECT_LT(Sp + 1, Line.size()) << Line;
    }
    Start = End + 1;
  }
  // The registry-driven families are present.
  EXPECT_NE(First.find("gillian_progress_paths_finished_total"),
            std::string::npos);
  EXPECT_NE(First.find("# TYPE gillian_scheduler_frontier_size gauge"),
            std::string::npos);

  uint64_t Before =
      metricValue(First, "gillian_progress_paths_finished_total");
  ASSERT_NE(Before, UINT64_MAX);
  progressCounters().PathsFinished += 5;
  uint64_t After = metricValue(
      metricsExposition(), "gillian_progress_paths_finished_total");
  EXPECT_GE(After, Before + 5);
}

TEST(MetricsExpositionTest, TypeLinesAppearOncePerFamily) {
  std::string Expo = metricsExposition();
  size_t Pos = 0;
  std::vector<std::string> Seen;
  while ((Pos = Expo.find("# TYPE ", Pos)) != std::string::npos) {
    size_t End = Expo.find('\n', Pos);
    std::string Line = Expo.substr(Pos, End - Pos);
    for (const std::string &S : Seen)
      EXPECT_NE(S, Line) << "duplicate TYPE line";
    Seen.push_back(Line);
    Pos = End;
  }
  EXPECT_FALSE(Seen.empty());
}

//===----------------------------------------------------------------------===//
// Serve-spec parsing
//===----------------------------------------------------------------------===//

TEST(ParseHostPortTest, AcceptsHostColonPort) {
  std::string Host;
  uint16_t Port = 1;
  ASSERT_TRUE(parseHostPort("127.0.0.1:0", Host, Port));
  EXPECT_EQ(Host, "127.0.0.1");
  EXPECT_EQ(Port, 0);
  ASSERT_TRUE(parseHostPort("0.0.0.0:9464", Host, Port));
  EXPECT_EQ(Port, 9464);
}

TEST(ParseHostPortTest, RejectsMalformedSpecs) {
  std::string Host;
  uint16_t Port = 0;
  EXPECT_FALSE(parseHostPort("no-colon", Host, Port));
  EXPECT_FALSE(parseHostPort(":8080", Host, Port));
  EXPECT_FALSE(parseHostPort("h:", Host, Port));
  EXPECT_FALSE(parseHostPort("h:65536", Host, Port));
  EXPECT_FALSE(parseHostPort("h:12x", Host, Port));
}

//===----------------------------------------------------------------------===//
// Rate tracker
//===----------------------------------------------------------------------===//

TEST(RateTrackerTest, FirstSampleHasNoRateThenDeltasAppear) {
  RateTracker T;
  RateTracker::Rates R0 = T.sample();
  EXPECT_EQ(R0.PathsPerSec, 0.0);
  EXPECT_EQ(R0.QueriesPerSec, 0.0);
  progressCounters().PathsFinished += 50;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  RateTracker::Rates R1 = T.sample();
  EXPECT_GT(R1.PathsPerSec, 0.0);
}

TEST(RateTrackerTest, WindowChangeTakesEffectOnNextSample) {
  const uint64_t Default = metricsWindowMs();

  // The setter clamps below 100 ms; values at or above pass through.
  setMetricsWindowMs(10);
  EXPECT_EQ(metricsWindowMs(), 100u);
  setMetricsWindowMs(250);
  EXPECT_EQ(metricsWindowMs(), 250u);

  // Rates accumulate inside the window...
  RateTracker T;
  T.sample();
  progressCounters().PathsFinished += 40;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  RateTracker::Rates Inside = T.sample();
  EXPECT_GT(Inside.PathsPerSec, 0.0);

  // ...then the window is shrunk below the age of every retained point:
  // the next sample must expire them all and report no rate — the
  // tracker re-reads the process-global window at every sample, so the
  // change needs no new tracker.
  setMetricsWindowMs(100);
  std::this_thread::sleep_for(std::chrono::milliseconds(140));
  RateTracker::Rates Expired = T.sample();
  EXPECT_EQ(Expired.PathsPerSec, 0.0);
  EXPECT_EQ(Expired.QueriesPerSec, 0.0);

  // And rates re-accumulate under the new window.
  progressCounters().PathsFinished += 40;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GT(T.sample().PathsPerSec, 0.0);

  setMetricsWindowMs(Default);
}

//===----------------------------------------------------------------------===//
// Heartbeat sampler
//===----------------------------------------------------------------------===//

TEST(HeartbeatSamplerTest, WritesValidJsonlLines) {
  const std::string Path = ::testing::TempDir() + "gillian_hb_test.jsonl";
  std::remove(Path.c_str());
  HeartbeatSampler S;
  ASSERT_TRUE(S.start(Path, 10));
  EXPECT_TRUE(S.running());
  EXPECT_FALSE(S.start(Path, 10)); // already running
  progressCounters().PathsFinished += 3;
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  S.stop();
  EXPECT_FALSE(S.running());
  EXPECT_GE(S.ticks(), 2u); // baseline + at least one tick

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_TRUE(validateJson(Line)) << "line " << Lines << ": " << Line;
    EXPECT_NE(Line.find("\"t_ms\":"), std::string::npos);
    EXPECT_NE(Line.find("\"paths_finished\":"), std::string::npos);
    EXPECT_NE(Line.find("\"paths_per_sec\":"), std::string::npos);
    EXPECT_NE(Line.find("\"window_ms\":"), std::string::npos);
    EXPECT_NE(Line.find("\"coverage_total\":"), std::string::npos);
  }
  EXPECT_GE(Lines, 2u);
  std::remove(Path.c_str());
}

TEST(HeartbeatSamplerTest, StartFailsOnUnopenablePath) {
  HeartbeatSampler S;
  EXPECT_FALSE(S.start(::testing::TempDir() + "no_such_dir/hb.jsonl", 10));
  EXPECT_FALSE(S.running());
}

//===----------------------------------------------------------------------===//
// Live-source registry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, ScopedSourceAppearsOnlyWhileAlive) {
  auto render = [] {
    PromWriter W;
    MetricsRegistry::instance().render(W);
    return W.take();
  };
  EXPECT_EQ(render().find("gillian_registry_probe_total"),
            std::string::npos);
  {
    ScopedMetricsSource Src([](PromWriter &W) {
      W.counter("gillian_registry_probe", 1);
    });
    EXPECT_NE(render().find("gillian_registry_probe_total"),
              std::string::npos);
  }
  EXPECT_EQ(render().find("gillian_registry_probe_total"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Live server round-trips (loopback)
//===----------------------------------------------------------------------===//

/// Connects to 127.0.0.1:\p Port, sends \p Req, reads until the peer
/// closes or \p MaxMs elapses; returns everything read. When \p Fd is
/// non-null the connection is kept open and its fd returned for reuse.
std::string httpExchange(uint16_t Port, const std::string &Req,
                         int *KeepFd = nullptr, int MaxMs = 2000) {
  int Fd = KeepFd && *KeepFd >= 0 ? *KeepFd
                                  : ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return {};
  if (!KeepFd || *KeepFd < 0) {
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                  sizeof(Addr)) != 0) {
      ::close(Fd);
      return {};
    }
  }
  (void)::send(Fd, Req.data(), Req.size(), MSG_NOSIGNAL);

  std::string Out;
  size_t BodyStart = std::string::npos, Want = std::string::npos;
  for (int Waited = 0; Waited < MaxMs;) {
    pollfd P{Fd, POLLIN, 0};
    int N = ::poll(&P, 1, 50);
    if (N == 0) {
      Waited += 50;
      // A complete framed response is enough when keeping the conn open.
      if (Want != std::string::npos && Out.size() >= BodyStart + Want)
        break;
      continue;
    }
    char Buf[4096];
    ssize_t R = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (R <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(R));
    if (BodyStart == std::string::npos) {
      size_t H = Out.find("\r\n\r\n");
      if (H != std::string::npos) {
        BodyStart = H + 4;
        size_t CL = Out.find("Content-Length: ");
        if (CL != std::string::npos && CL < H)
          Want = std::strtoull(Out.c_str() + CL + 16, nullptr, 10);
      }
    }
    if (Want != std::string::npos && Out.size() >= BodyStart + Want &&
        KeepFd)
      break;
  }
  if (KeepFd)
    *KeepFd = Fd;
  else
    ::close(Fd);
  return Out;
}

TEST(HttpServerTest, ServesKeepAliveThenRejectsBadInput) {
  HttpServer S;
  uint16_t Port = S.start("127.0.0.1", 0, [](const HttpRequest &Req) {
    HttpResponse R;
    R.Body = "echo:" + Req.Target + "\n";
    return R;
  });
  ASSERT_NE(Port, 0);
  EXPECT_TRUE(S.running());

  // Two requests on one keep-alive connection.
  int Fd = -1;
  std::string R1 =
      httpExchange(Port, "GET /a HTTP/1.1\r\nHost: t\r\n\r\n", &Fd);
  EXPECT_NE(R1.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(R1.find("echo:/a\n"), std::string::npos);
  EXPECT_NE(R1.find("Connection: keep-alive"), std::string::npos);
  std::string R2 =
      httpExchange(Port, "GET /b HTTP/1.1\r\nHost: t\r\n\r\n", &Fd);
  EXPECT_NE(R2.find("echo:/b\n"), std::string::npos);
  ::close(Fd);

  // Non-GET gets 405; garbage gets 400 and the connection closed.
  std::string R3 = httpExchange(
      Port, "POST /a HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(R3.find("HTTP/1.1 405"), std::string::npos);
  std::string R4 = httpExchange(Port, "utter nonsense\r\n\r\n");
  EXPECT_NE(R4.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(R4.find("Connection: close"), std::string::npos);

  // HEAD returns headers only.
  std::string R5 = httpExchange(
      Port, "HEAD /a HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(R5.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(R5.find("echo:"), std::string::npos);

  EXPECT_GE(S.requestsServed(), 5u);
  EXPECT_NE(S.lastRequestNs(), 0u);
  S.stop();
  EXPECT_FALSE(S.running());
  S.stop(); // idempotent
}

TEST(IntrospectServerTest, RoutesAllEndpoints) {
  IntrospectServer S;
  uint16_t Port = S.start("127.0.0.1", 0);
  ASSERT_NE(Port, 0);
  EXPECT_EQ(S.port(), Port);

  auto get = [&](const char *Path) {
    return httpExchange(Port, std::string("GET ") + Path +
                                  " HTTP/1.1\r\nHost: t\r\n"
                                  "Connection: close\r\n\r\n");
  };
  auto body = [](const std::string &Resp) {
    size_t H = Resp.find("\r\n\r\n");
    return H == std::string::npos ? std::string() : Resp.substr(H + 4);
  };

  EXPECT_EQ(body(get("/healthz")), "ok\n");
  std::string Metrics = get("/metrics");
  EXPECT_NE(Metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(Metrics.find("# TYPE "), std::string::npos);
  EXPECT_TRUE(validateJson(body(get("/stats"))));
  EXPECT_TRUE(validateJson(body(get("/trace"))));
  std::string Progress = body(get("/progress"));
  EXPECT_TRUE(validateJson(Progress)) << Progress;
  EXPECT_NE(Progress.find("\"paths_finished\""), std::string::npos);
  EXPECT_NE(Progress.find("\"paths_per_sec\""), std::string::npos);
  EXPECT_NE(Progress.find("\"window_ms\""), std::string::npos);
  std::string Tree = body(get("/tree?depth=2"));
  EXPECT_TRUE(validateJson(Tree)) << Tree;
  EXPECT_NE(Tree.find("\"enabled\""), std::string::npos);
  EXPECT_NE(Tree.find("\"roots\""), std::string::npos);
  EXPECT_NE(get("/nope").find("HTTP/1.1 404"), std::string::npos);
  S.stop();
}

} // namespace
