# Empty compiler generated dependencies file for gillian_support.
# This may be replaced when dependencies are built.
