//===- tests/targets/introspect_live_test.cpp -----------------------------===//
//
// Live introspection under concurrent load — the ThreadSanitizer target of
// DESIGN.md §4d: while an 8-worker parallel exploration runs the MJS
// Buckets suites, client threads continuously scrape /metrics, /trace and
// /progress off the embedded HTTP server. Every response must stay
// well-formed (the exposition lines parse, the JSON validates) and the
// run's results must be unaffected by the scraping. Under TSan this is
// the proof that mid-run snapshots of the counter registry, the span
// table, the flight-recorder ring, the query profiler and the coverage
// map are race-free.
//
//===----------------------------------------------------------------------===//

#include "targets/buckets_mjs.h"

#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "obs/introspect/introspect_server.h"
#include "obs/json_writer.h"
#include "obs/obs_config.h"
#include "obs/trace_ring.h"
#include "targets/suite_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace gillian;
using namespace gillian::targets;

namespace {

/// One blocking GET of \p Path against 127.0.0.1:\p Port; returns the
/// response body ("" on any connection trouble — the workload may finish
/// while a scrape is in flight, which is not a failure).
std::string scrape(uint16_t Port, const char *Path) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return {};
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    ::close(Fd);
    return {};
  }
  std::string Req = std::string("GET ") + Path +
                    " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  (void)::send(Fd, Req.data(), Req.size(), MSG_NOSIGNAL);
  std::string Out;
  for (int Waited = 0; Waited < 5000;) {
    pollfd P{Fd, POLLIN, 0};
    int N = ::poll(&P, 1, 50);
    if (N == 0) {
      Waited += 50;
      continue;
    }
    char Buf[8192];
    ssize_t R = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (R <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(R));
  }
  ::close(Fd);
  size_t H = Out.find("\r\n\r\n");
  return H == std::string::npos ? std::string() : Out.substr(H + 4);
}

} // namespace

TEST(IntrospectLiveTest, ConcurrentScrapesDuringEightWorkerSuiteRun) {
  // Coverage + tracing on, so the scrapes exercise every snapshot path.
  obs::ObsOptions Saved = obs::ObsConfig::get();
  obs::ObsOptions O = Saved;
  O.Coverage = true;
  obs::ObsConfig::set(O);
  obs::TraceRecorder::instance().enable();

  obs::IntrospectServer Server;
  uint16_t Port = Server.start("127.0.0.1", 0);
  ASSERT_NE(Port, 0);

  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Scrapes{0};
  std::atomic<uint64_t> BadBodies{0};
  auto scraper = [&](const char *Path, bool Json) {
    while (!Done.load(std::memory_order_acquire)) {
      std::string Body = scrape(Port, Path);
      if (!Body.empty()) {
        ++Scrapes;
        if (Json ? !obs::validateJson(Body)
                 : Body.find("# TYPE ") == std::string::npos)
          ++BadBodies;
      }
    }
  };
  std::thread MetricsScraper(scraper, "/metrics", false);
  std::thread TraceScraper(scraper, "/trace", true);
  std::thread ProgressScraper(scraper, "/progress", true);

  EngineOptions Opts;
  Opts.Scheduler.Workers = 8;
  uint64_t Tests = 0;
  for (const BucketsSuite &S : bucketsSuites()) {
    std::string Src =
        std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
    Result<Prog> P = mjs::compileMjsSource(Src);
    ASSERT_TRUE(P.ok()) << S.Name << ": " << P.error();
    SuiteResult R = runSuite<mjs::MjsSMem>(S.Name, *P, Opts);
    EXPECT_TRUE(R.clean()) << S.Name;
    Tests += R.Tests;
  }
  EXPECT_GT(Tests, 0u);

  Done.store(true, std::memory_order_release);
  MetricsScraper.join();
  TraceScraper.join();
  ProgressScraper.join();
  Server.stop();
  obs::TraceRecorder::instance().disable();
  obs::ObsConfig::set(Saved);

  // The suites take long enough that the scrapers land many mid-run hits;
  // every body they got back was well-formed.
  EXPECT_GT(Scrapes.load(), 0u);
  EXPECT_EQ(BadBodies.load(), 0u);
}
