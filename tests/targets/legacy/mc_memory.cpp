//===- tests/targets/legacy/mc_memory.cpp ---------------------------------===//
//
// VERBATIM SNAPSHOT of src/mc/memory.cpp as of the memlib refactor, kept
// solely so memlib_differential_test can replay suites on the pre-memlib
// action implementations and assert bit-identical branch sequences.
// Namespace renamed gillian::mc -> gillian::legacy (Chunk types shared).
// Do not edit: this file intentionally preserves the old code paths.
//
//===----------------------------------------------------------------------===//

//===- mc/memory.cpp ------------------------------------------------------===//

#include "mc_memory.h"

#include "engine/action_args.h"
#include "obs/action_counters.h"
#include "solver/simplifier.h"

#include <cstring>

using namespace gillian;
using namespace gillian::legacy;

InternedString gillian::legacy::actAlloc() { return InternedString::get("alloc"); }
InternedString gillian::legacy::actFree() { return InternedString::get("free"); }
InternedString gillian::legacy::actLoad() { return InternedString::get("load"); }
InternedString gillian::legacy::actStore() { return InternedString::get("store"); }
InternedString gillian::legacy::actMemcpy() { return InternedString::get("memcpy"); }
InternedString gillian::legacy::actMemset() { return InternedString::get("memset"); }
InternedString gillian::legacy::actBlockSize() {
  return InternedString::get("blockSize");
}
InternedString gillian::legacy::actDropPerm() {
  return InternedString::get("dropPerm");
}
InternedString gillian::legacy::actComparePtr() {
  return InternedString::get("comparePtr");
}
InternedString gillian::legacy::actValidPtr() {
  return InternedString::get("validPtr");
}

Value gillian::legacy::nullPtr() {
  return Value::listV({Value::symV("$null"), Value::intV(0)});
}
Expr gillian::legacy::nullPtrE() { return Expr::lit(nullPtr()); }

Value gillian::legacy::chunkValue(const Chunk &C) {
  return Value::listV({Value::intV(C.Size), Value::intV(C.Align),
                       Value::intV(static_cast<int64_t>(C.Kind))});
}

namespace {

Result<Chunk> chunkFromValue(const Value &V) {
  if (!V.isList() || V.asList().size() != 3)
    return Err("malformed chunk " + V.toString());
  const auto &L = V.asList();
  if (!L[0].isInt() || !L[1].isInt() || !L[2].isInt())
    return Err("malformed chunk " + V.toString());
  int64_t K = L[2].asInt();
  if (K < 0 || K > 2)
    return Err("bad chunk kind in " + V.toString());
  return Chunk{L[0].asInt(), L[1].asInt(), static_cast<ChunkKind>(K)};
}

bool isPtrValue(const Value &V) {
  return V.isList() && V.asList().size() == 2 && V.asList()[0].isSym() &&
         V.asList()[1].isInt();
}

/// Encodes a concrete scalar into byte-level memory values.
Result<std::vector<CMemVal>> encodeConcrete(const Value &V, const Chunk &C) {
  std::vector<CMemVal> Out(static_cast<size_t>(C.Size));
  switch (C.Kind) {
  case ChunkKind::Int: {
    if (!V.isInt())
      return Err("UB: storing " + V.toString() + " through an integer chunk");
    uint64_t Bits = static_cast<uint64_t>(V.asInt());
    for (int64_t I = 0; I < C.Size; ++I) {
      Out[static_cast<size_t>(I)].K = CMemVal::Byte;
      Out[static_cast<size_t>(I)].B =
          static_cast<uint8_t>((Bits >> (8 * I)) & 0xFF);
    }
    return Out;
  }
  case ChunkKind::Float: {
    if (!V.isNum())
      return Err("UB: storing " + V.toString() + " through a float chunk");
    double D = V.asNum();
    uint64_t Bits;
    std::memcpy(&Bits, &D, sizeof(double));
    for (int64_t I = 0; I < C.Size; ++I) {
      Out[static_cast<size_t>(I)].K = CMemVal::Byte;
      Out[static_cast<size_t>(I)].B =
          static_cast<uint8_t>((Bits >> (8 * I)) & 0xFF);
    }
    return Out;
  }
  case ChunkKind::Ptr: {
    if (!isPtrValue(V))
      return Err("UB: storing " + V.toString() + " through a pointer chunk");
    for (int64_t I = 0; I < C.Size; ++I) {
      CMemVal &M = Out[static_cast<size_t>(I)];
      M.K = CMemVal::Frag;
      M.FragVal = V;
      M.FragKind = ChunkKind::Ptr;
      M.FragIdx = static_cast<uint8_t>(I);
      M.FragLen = static_cast<uint8_t>(C.Size);
    }
    return Out;
  }
  }
  return Err("bad chunk kind");
}

int64_t signExtend(uint64_t Bits, int64_t Bytes) {
  if (Bytes >= 8)
    return static_cast<int64_t>(Bits);
  uint64_t SignBit = 1ull << (8 * Bytes - 1);
  uint64_t Mask = (1ull << (8 * Bytes)) - 1;
  Bits &= Mask;
  if (Bits & SignBit)
    Bits |= ~Mask;
  return static_cast<int64_t>(Bits);
}

/// Decodes \p N concrete memory values starting at \p Begin.
Result<Value> decodeConcrete(const CMemVal *Begin, const Chunk &C) {
  // Fragment-carried values (pointers, and replayed symbolic scalars).
  if (Begin[0].K == CMemVal::Frag) {
    for (int64_t I = 0; I < C.Size; ++I) {
      const CMemVal &M = Begin[I];
      if (M.K != CMemVal::Frag || M.FragVal != Begin[0].FragVal ||
          M.FragIdx != I || M.FragLen != C.Size)
        return Err("UB: reading a torn value from memory");
    }
    if (Begin[0].FragKind != C.Kind)
      return Err("UB: type-confused load (stored as " +
                 std::to_string(static_cast<int>(Begin[0].FragKind)) +
                 ", loaded as " + std::to_string(static_cast<int>(C.Kind)) +
                 ")");
    return Begin[0].FragVal;
  }
  uint64_t Bits = 0;
  for (int64_t I = 0; I < C.Size; ++I) {
    const CMemVal &M = Begin[I];
    if (M.K == CMemVal::Undef)
      return Err("UB: read of uninitialised memory");
    if (M.K != CMemVal::Byte)
      return Err("UB: reading a torn value from memory");
    Bits |= static_cast<uint64_t>(M.B) << (8 * I);
  }
  switch (C.Kind) {
  case ChunkKind::Int:
    return Value::intV(signExtend(Bits, C.Size));
  case ChunkKind::Float: {
    double D;
    std::memcpy(&D, &Bits, sizeof(double));
    return Value::numV(D);
  }
  case ChunkKind::Ptr:
    return Err("UB: decoding raw bytes as a pointer");
  }
  return Err("bad chunk kind");
}

CBlock cloneBlock(const CBlock &B) { return B; }

} // namespace

//===----------------------------------------------------------------------===//
// Concrete actions
//===----------------------------------------------------------------------===//

Result<Value> McCMem::doLoad(const Value &ChunkV, const Value &B,
                             const Value &Off) {
  Result<Chunk> C = chunkFromValue(ChunkV);
  if (!C)
    return Err(C.error());
  if (!B.isSym() || !Off.isInt())
    return Err("UB: load through invalid pointer [" + B.toString() + ", " +
               Off.toString() + "]");
  const CBlock *Blk = findBlock(B.asSym());
  if (!Blk)
    return Err("UB: load from unallocated block " + B.toString());
  if (Blk->Freed)
    return Err("UB: load after free of " + B.toString());
  int64_t O = Off.asInt();
  if (O < 0 || O + C->Size > Blk->Size)
    return Err("UB: out-of-bounds load at offset " + std::to_string(O) +
               " (block size " + std::to_string(Blk->Size) + ")");
  if (C->Align > 1 && O % C->Align != 0)
    return Err("UB: unaligned load at offset " + std::to_string(O));
  for (int64_t I = 0; I < C->Size; ++I)
    if (Blk->Perms[static_cast<size_t>(O + I)] <
        static_cast<uint8_t>(Perm::Readable))
      return Err("UB: load without Readable permission");
  return decodeConcrete(&Blk->Bytes[static_cast<size_t>(O)], *C);
}

Result<Value> McCMem::doStore(const Value &ChunkV, const Value &B,
                              const Value &Off, const Value &V) {
  Result<Chunk> C = chunkFromValue(ChunkV);
  if (!C)
    return Err(C.error());
  if (!B.isSym() || !Off.isInt())
    return Err("UB: store through invalid pointer");
  const CBlock *Blk = findBlock(B.asSym());
  if (!Blk)
    return Err("UB: store to unallocated block " + B.toString());
  if (Blk->Freed)
    return Err("UB: store after free of " + B.toString());
  int64_t O = Off.asInt();
  if (O < 0 || O + C->Size > Blk->Size)
    return Err("UB: out-of-bounds store at offset " + std::to_string(O) +
               " (block size " + std::to_string(Blk->Size) + ")");
  if (C->Align > 1 && O % C->Align != 0)
    return Err("UB: unaligned store at offset " + std::to_string(O));
  for (int64_t I = 0; I < C->Size; ++I)
    if (Blk->Perms[static_cast<size_t>(O + I)] <
        static_cast<uint8_t>(Perm::Writable))
      return Err("UB: store without Writable permission");
  Result<std::vector<CMemVal>> Enc = encodeConcrete(V, *C);
  if (!Enc)
    return Err(Enc.error());
  CBlock NB = cloneBlock(*Blk);
  for (int64_t I = 0; I < C->Size; ++I)
    NB.Bytes[static_cast<size_t>(O + I)] = (*Enc)[static_cast<size_t>(I)];
  putBlock(B.asSym(), std::move(NB));
  return V;
}

Result<Value> McCMem::doComparePtr(const Value &Op, const Value &P1,
                                   const Value &P2) {
  if (!Op.isStr())
    return Err("comparePtr expects an operation name");
  if (!isPtrValue(P1) || !isPtrValue(P2))
    return Err("UB: pointer comparison on non-pointers");
  auto blockOf = [&](const Value &P) { return P.asList()[0].asSym(); };
  auto offsetOf = [&](const Value &P) { return P.asList()[1].asInt(); };
  InternedString Null = InternedString::get("$null");
  // Any comparison involving a dangling (freed) pointer is undefined —
  // one of the §4.2 findings in the Collections-C test suite.
  for (const Value *P : {&P1, &P2}) {
    InternedString Blk = blockOf(*P);
    if (Blk == Null)
      continue;
    const CBlock *B = findBlock(Blk);
    if (B && B->Freed)
      return Err("UB: comparison of a freed pointer");
  }
  std::string_view O = Op.asStr().str();
  if (O == "eq")
    return Value::boolV(P1 == P2);
  // Relational comparison requires both pointers inside the same live
  // block (C11 6.5.8p5) — the classic Collections-C undefined behaviour.
  if (blockOf(P1) == Null || blockOf(P2) == Null ||
      blockOf(P1) != blockOf(P2))
    return Err("UB: relational comparison of pointers into different "
               "objects");
  int64_t A = offsetOf(P1), B2 = offsetOf(P2);
  if (O == "lt")
    return Value::boolV(A < B2);
  if (O == "le")
    return Value::boolV(A <= B2);
  return Err("comparePtr: unknown operation '" + std::string(O) + "'");
}

Result<Value> McCMem::execAction(InternedString Act, const Value &Arg) {
  if (Act == actAlloc()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    if (!(*A)[0].isSym() || !(*A)[1].isInt())
      return Err("alloc expects [block-symbol, size]");
    int64_t Size = (*A)[1].asInt();
    if (Size < 0)
      return Err("UB: allocation of negative size");
    if (findBlock((*A)[0].asSym()))
      return Err("alloc: block symbol reused");
    CBlock B;
    B.Size = Size;
    B.Bytes.resize(static_cast<size_t>(Size));
    B.Perms.assign(static_cast<size_t>(Size),
                   static_cast<uint8_t>(Perm::Writable));
    putBlock((*A)[0].asSym(), std::move(B));
    return Value::listV({(*A)[0], Value::intV(0)});
  }
  if (Act == actFree()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 1);
    if (!A)
      return Err(A.error());
    const Value &P = (*A)[0];
    if (P == nullPtr())
      return Value::boolV(true); // free(NULL) is a no-op
    if (!isPtrValue(P))
      return Err("UB: free of a non-pointer");
    if (P.asList()[1].asInt() != 0)
      return Err("UB: free of an interior pointer");
    InternedString B = P.asList()[0].asSym();
    const CBlock *Blk = findBlock(B);
    if (!Blk)
      return Err("UB: free of unallocated block");
    if (Blk->Freed)
      return Err("UB: double free");
    CBlock NB = cloneBlock(*Blk);
    NB.Freed = true;
    putBlock(B, std::move(NB));
    return Value::boolV(true);
  }
  if (Act == actLoad()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 3);
    if (!A)
      return Err(A.error());
    return doLoad((*A)[0], (*A)[1], (*A)[2]);
  }
  if (Act == actStore()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 4);
    if (!A)
      return Err(A.error());
    return doStore((*A)[0], (*A)[1], (*A)[2], (*A)[3]);
  }
  if (Act == actMemcpy()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 5);
    if (!A)
      return Err(A.error());
    const Value &DB = (*A)[0], &DOff = (*A)[1], &SB = (*A)[2],
                &SOff = (*A)[3], &Len = (*A)[4];
    if (!DB.isSym() || !SB.isSym() || !DOff.isInt() || !SOff.isInt() ||
        !Len.isInt())
      return Err("memcpy expects [dstB, dstOff, srcB, srcOff, len]");
    const CBlock *Src = findBlock(SB.asSym());
    const CBlock *Dst = findBlock(DB.asSym());
    if (!Src || !Dst || Src->Freed || Dst->Freed)
      return Err("UB: memcpy on dead memory");
    int64_t N = Len.asInt(), DO_ = DOff.asInt(), SO = SOff.asInt();
    if (N < 0 || SO < 0 || DO_ < 0 || SO + N > Src->Size ||
        DO_ + N > Dst->Size)
      return Err("UB: out-of-bounds memcpy");
    CBlock NB = cloneBlock(*Dst);
    for (int64_t I = 0; I < N; ++I)
      NB.Bytes[static_cast<size_t>(DO_ + I)] =
          Src->Bytes[static_cast<size_t>(SO + I)];
    putBlock(DB.asSym(), std::move(NB));
    return Value::boolV(true);
  }
  if (Act == actMemset()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 4);
    if (!A)
      return Err(A.error());
    const Value &B = (*A)[0], &Off = (*A)[1], &Len = (*A)[2],
                &Byte = (*A)[3];
    if (!B.isSym() || !Off.isInt() || !Len.isInt() || !Byte.isInt())
      return Err("memset expects [block, off, len, byte]");
    const CBlock *Blk = findBlock(B.asSym());
    if (!Blk || Blk->Freed)
      return Err("UB: memset on dead memory");
    int64_t O = Off.asInt(), N = Len.asInt();
    if (N < 0 || O < 0 || O + N > Blk->Size)
      return Err("UB: out-of-bounds memset");
    CBlock NB = cloneBlock(*Blk);
    for (int64_t I = 0; I < N; ++I) {
      CMemVal &M = NB.Bytes[static_cast<size_t>(O + I)];
      M.K = CMemVal::Byte;
      M.B = static_cast<uint8_t>(Byte.asInt() & 0xFF);
      M.FragVal = Value();
    }
    putBlock(B.asSym(), std::move(NB));
    return Value::boolV(true);
  }
  if (Act == actBlockSize()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 1);
    if (!A)
      return Err(A.error());
    if (!(*A)[0].isSym())
      return Err("blockSize expects a block symbol");
    const CBlock *Blk = findBlock((*A)[0].asSym());
    if (!Blk || Blk->Freed)
      return Err("UB: blockSize of dead memory");
    return Value::intV(Blk->Size);
  }
  if (Act == actDropPerm()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 4);
    if (!A)
      return Err(A.error());
    const Value &B = (*A)[0], &Off = (*A)[1], &Len = (*A)[2],
                &PermV = (*A)[3];
    if (!B.isSym() || !Off.isInt() || !Len.isInt() || !PermV.isInt())
      return Err("dropPerm expects [block, off, len, perm]");
    const CBlock *Blk = findBlock(B.asSym());
    if (!Blk || Blk->Freed)
      return Err("UB: dropPerm on dead memory");
    int64_t O = Off.asInt(), N = Len.asInt();
    if (N < 0 || O < 0 || O + N > Blk->Size)
      return Err("UB: dropPerm out of bounds");
    CBlock NB = cloneBlock(*Blk);
    for (int64_t I = 0; I < N; ++I) {
      uint8_t &P = NB.Perms[static_cast<size_t>(O + I)];
      P = std::min(P, static_cast<uint8_t>(PermV.asInt()));
    }
    putBlock(B.asSym(), std::move(NB));
    return Value::boolV(true);
  }
  if (Act == actComparePtr()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 3);
    if (!A)
      return Err(A.error());
    return doComparePtr((*A)[0], (*A)[1], (*A)[2]);
  }
  if (Act == actValidPtr()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 3);
    if (!A)
      return Err(A.error());
    const Value &B = (*A)[0], &Off = (*A)[1], &Len = (*A)[2];
    if (!B.isSym() || !Off.isInt() || !Len.isInt())
      return Value::boolV(false);
    const CBlock *Blk = findBlock(B.asSym());
    if (!Blk || Blk->Freed)
      return Value::boolV(false);
    return Value::boolV(Off.asInt() >= 0 &&
                        Off.asInt() + Len.asInt() <= Blk->Size);
  }
  return Err("unknown MC action '" + std::string(Act.str()) + "'");
}

std::string McCMem::toString() const {
  std::string Out = "{";
  for (const auto &[B, Blk] : Blocks) {
    Out += " " + std::string(B.str()) + "[" + std::to_string(Blk->Size) +
           (Blk->Freed ? ", freed" : "") + "]";
  }
  return Out + " }";
}

//===----------------------------------------------------------------------===//
// Symbolic actions
//===----------------------------------------------------------------------===//

namespace {

enum class Tri { Yes, No, Maybe };

Tri condTri(Expr C, const PathCondition &PC, Solver &S, Expr &CondOut) {
  C = simplify(C);
  if (C.isTrue())
    return Tri::Yes;
  if (C.isFalse())
    return Tri::No;
  PathCondition Ext = PC;
  Ext.add(C);
  if (!S.maybeSat(Ext))
    return Tri::No;
  CondOut = C;
  return Tri::Maybe;
}

Result<Chunk> chunkFromExpr(const Expr &E) {
  if (E.isLit())
    return chunkFromValue(E.litValue());
  if (E.kind() == ExprKind::List && E.numChildren() == 3 &&
      E.child(0).isLit() && E.child(1).isLit() && E.child(2).isLit())
    return chunkFromValue(Value::listV({E.child(0).litValue(),
                                        E.child(1).litValue(),
                                        E.child(2).litValue()}));
  return Err("chunks must be compile-time constants, got " + E.toString());
}

/// Splits a pointer-shaped expression into (block, offset).
Result<std::pair<Expr, Expr>> splitPtr(const Expr &E) {
  if (E.kind() == ExprKind::List && E.numChildren() == 2)
    return std::make_pair(E.child(0), E.child(1));
  if (E.isLit() && E.litValue().isList() && E.litValue().asList().size() == 2)
    return std::make_pair(Expr::lit(E.litValue().asList()[0]),
                          Expr::lit(E.litValue().asList()[1]));
  return Err("UB: operation on a non-pointer value " + E.toString());
}

/// Encodes a (possibly symbolic) scalar for the byte-level memory:
/// literals encode to real bytes exactly like the concrete memory (so
/// replay agrees); symbolic scalars and all pointers become fragments.
Result<std::vector<SMemVal>> encodeSymbolic(const Expr &V, const Chunk &C) {
  if (V.isLit() && C.Kind != ChunkKind::Ptr) {
    Result<std::vector<CMemVal>> Conc = encodeConcrete(V.litValue(), C);
    if (!Conc)
      return Err(Conc.error());
    std::vector<SMemVal> Out(Conc->size());
    for (size_t I = 0; I != Conc->size(); ++I) {
      Out[I].K = SMemVal::Byte;
      Out[I].B = (*Conc)[I].B;
    }
    return Out;
  }
  std::vector<SMemVal> Out(static_cast<size_t>(C.Size));
  for (int64_t I = 0; I < C.Size; ++I) {
    SMemVal &M = Out[static_cast<size_t>(I)];
    M.K = SMemVal::Frag;
    M.FragVal = V;
    M.FragKind = C.Kind;
    M.FragIdx = static_cast<uint8_t>(I);
    M.FragLen = static_cast<uint8_t>(C.Size);
  }
  return Out;
}

/// Decodes C.Size cells of \p B starting at concrete offset \p O.
Result<Expr> decodeSymbolic(const SBlock &B, int64_t O, const Chunk &C) {
  const SMemVal *First = B.Bytes.lookup(O);
  if (First && First->K == SMemVal::Frag) {
    for (int64_t I = 0; I < C.Size; ++I) {
      const SMemVal *M = B.Bytes.lookup(O + I);
      if (!M || M->K != SMemVal::Frag || M->FragVal != First->FragVal ||
          M->FragIdx != I || M->FragLen != C.Size)
        return Err("UB: reading a torn value from memory");
    }
    if (First->FragKind != C.Kind)
      return Err("UB: type-confused load");
    return First->FragVal;
  }
  uint64_t Bits = 0;
  for (int64_t I = 0; I < C.Size; ++I) {
    const SMemVal *M = B.Bytes.lookup(O + I);
    if (!M)
      return Err("UB: read of uninitialised memory");
    if (M->K != SMemVal::Byte)
      return Err("UB: reading a torn value from memory");
    Bits |= static_cast<uint64_t>(M->B) << (8 * I);
  }
  switch (C.Kind) {
  case ChunkKind::Int:
    return Expr::intE(signExtend(Bits, C.Size));
  case ChunkKind::Float: {
    double D;
    std::memcpy(&D, &Bits, sizeof(double));
    return Expr::numE(D);
  }
  case ChunkKind::Ptr:
    return Err("UB: decoding raw bytes as a pointer");
  }
  return Err("bad chunk kind");
}

/// Writable-permission check over concrete byte range.
bool permOk(const SBlock &B, int64_t O, int64_t N, Perm Needed) {
  for (int64_t I = 0; I < N; ++I) {
    const uint8_t *P = B.PermOverrides.lookup(O + I);
    uint8_t Have = P ? *P : static_cast<uint8_t>(Perm::Writable);
    if (Have < static_cast<uint8_t>(Needed))
      return false;
  }
  return true;
}

constexpr int64_t MaxSymbolicOffsetBlock = 1 << 12;

} // namespace

/// Per-action helper bundling the branching plumbing.
struct McSMem::ActionCtx {
  const McSMem &M;
  const PathCondition &PC;
  Solver &S;
  std::vector<SymActionBranch<McSMem>> Out;

  ActionCtx(const McSMem &M, const PathCondition &PC, Solver &S)
      : M(M), PC(PC), S(S) {}

  void error(const std::string &Msg, Expr Cond = Expr()) {
    Out.push_back({M, Expr::strE(Msg), std::move(Cond), /*IsError=*/true});
  }
  void ok(McSMem Next, Expr Ret, Expr Cond = Expr()) {
    Out.push_back({std::move(Next), std::move(Ret), std::move(Cond), false});
  }

  /// Resolves the block expression to stored blocks; calls Body(key,
  /// block, takenCond) per alias; emits an unknown-block fault for the
  /// residual world.
  template <typename Fn>
  void forEachBlock(const Expr &B, const char *What, Fn Body) {
    Expr MissCond = Expr::boolE(true);
    // Fast path: structural hit (blocks are uSym symbols in practice).
    if (M.blocks().lookup(B)) {
      Body(B, *M.blocks().lookup(B), Expr::boolE(true));
      return;
    }
    for (const auto &[Key, Blk] : M.blocks()) {
      Expr Cond;
      Tri T = condTri(Expr::eq(B, Key), PC, S, Cond);
      if (T == Tri::No)
        continue;
      if (T == Tri::Yes) {
        Body(Key, Blk, Expr::boolE(true));
        return;
      }
      Body(Key, Blk, Cond);
      MissCond = simplify(Expr::andE(MissCond, Expr::notE(Cond)));
    }
    if (MissCond.isFalse())
      return;
    PathCondition Ext = PC;
    Ext.add(MissCond);
    if (S.maybeSat(Ext))
      error(std::string("UB: ") + What + " on unallocated memory", MissCond);
  }

  /// Splits on a boolean condition: OnTrue under Cond, error under ¬Cond.
  /// Returns the condition to thread into the success branch (null if
  /// definite).
  template <typename Fn>
  void checkOrError(Expr Cond, const Expr &Under, const std::string &Msg,
                    Fn OnTrue) {
    Expr C;
    Tri T = condTri(Cond, PC, S, C);
    if (T == Tri::No) {
      error(Msg, Under);
      return;
    }
    Expr NotC;
    if (T == Tri::Maybe) {
      Tri TN = condTri(Expr::notE(Cond), PC, S, NotC);
      if (TN != Tri::No)
        error(Msg, simplify(Expr::andE(Under, Expr::notE(Cond))));
      OnTrue(simplify(Expr::andE(Under, Cond)));
      return;
    }
    OnTrue(Under);
  }
};

Result<std::vector<SymActionBranch<McSMem>>>
McSMem::execAction(InternedString Act, const Expr &Arg,
                   const PathCondition &PC, Solver &S) const {
  obs::ActionCounters::bump("mc", Act);
  ActionCtx C(*this, PC, S);

  if (Act == actAlloc()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 2);
    if (!A)
      return Err(A.error());
    const Expr &B = (*A)[0];
    Expr SizeE = simplify((*A)[1]);
    if (!B.isLit() || !B.litValue().isSym())
      return Err("alloc expects a fresh block symbol");
    if (!SizeE.isLit() || !SizeE.litValue().isInt())
      return Err("allocation of symbolic size is not supported (see "
                 "DESIGN.md / paper §4.2 'Current Limitations')");
    int64_t Size = SizeE.litValue().asInt();
    if (Size < 0) {
      C.error("UB: allocation of negative size");
      return C.Out;
    }
    McSMem Next = *this;
    SBlock Blk;
    Blk.Size = Size;
    Next.putBlock(B, std::move(Blk));
    C.ok(std::move(Next), Expr::list({B, Expr::intE(0)}));
    return C.Out;
  }

  if (Act == actFree()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 1);
    if (!A)
      return Err(A.error());
    Expr P = simplify((*A)[0]);
    if (P == nullPtrE()) {
      C.ok(*this, Expr::boolE(true));
      return C.Out;
    }
    Result<std::pair<Expr, Expr>> BO = splitPtr(P);
    if (!BO) {
      C.error(BO.error());
      return C.Out;
    }
    C.forEachBlock(BO->first, "free", [&](const Expr &Key,
                                          const std::shared_ptr<const SBlock>
                                              &Blk,
                                          const Expr &Taken) {
      if (Blk->Freed) {
        C.error("UB: double free", Taken);
        return;
      }
      C.checkOrError(
          Expr::eq(BO->second, Expr::intE(0)), Taken,
          "UB: free of an interior pointer", [&](Expr Under) {
            McSMem Next = *this;
            SBlock NB = *Blk;
            NB.Freed = true;
            Next.putBlock(Key, std::move(NB));
            C.ok(std::move(Next), Expr::boolE(true), Under);
          });
    });
    return C.Out;
  }

  if (Act == actLoad() || Act == actStore()) {
    bool IsStore = Act == actStore();
    Result<std::vector<Expr>> A = splitArgsE(Arg, IsStore ? 4 : 3);
    if (!A)
      return Err(A.error());
    Result<Chunk> Ch = chunkFromExpr((*A)[0]);
    if (!Ch)
      return Err(Ch.error());
    const Expr &B = (*A)[1];
    Expr Off = simplify((*A)[2]);
    Expr StoredVal = IsStore ? (*A)[3] : Expr();
    const char *What = IsStore ? "store" : "load";

    C.forEachBlock(B, What, [&](const Expr &Key,
                                const std::shared_ptr<const SBlock> &Blk,
                                const Expr &Taken) {
      if (Blk->Freed) {
        C.error(std::string("UB: ") + What + " after free", Taken);
        return;
      }
      // Bounds: 0 <= off && off + sz <= size (the SLoad side conditions).
      Expr InBounds = Expr::andE(
          Expr::le(Expr::intE(0), Off),
          Expr::le(Expr::add(Off, Expr::intE(Ch->Size)),
                   Expr::intE(Blk->Size)));
      C.checkOrError(InBounds, Taken,
                     std::string("UB: out-of-bounds ") + What, [&](Expr U1) {
        // Alignment: off mod al == 0.
        Expr Aligned =
            Ch->Align <= 1
                ? Expr::boolE(true)
                : Expr::eq(Expr::binOp(BinOpKind::Mod, Off,
                                       Expr::intE(Ch->Align)),
                           Expr::intE(0));
        C.checkOrError(Aligned, U1,
                       std::string("UB: unaligned ") + What, [&](Expr U2) {
          // Concrete-offset fast path, or branch over candidates.
          std::vector<int64_t> Candidates;
          Expr OffS = simplify(Off);
          if (OffS.isLit() && OffS.litValue().isInt()) {
            Candidates.push_back(OffS.litValue().asInt());
          } else {
            if (Blk->Size > MaxSymbolicOffsetBlock) {
              C.error("engine limit: symbolic offset into a large block",
                      U2);
              return;
            }
            int64_t Step = std::max<int64_t>(Ch->Align, 1);
            for (int64_t O = 0; O + Ch->Size <= Blk->Size; O += Step)
              Candidates.push_back(O);
          }
          for (int64_t O : Candidates) {
            Expr Under = U2;
            if (!(OffS.isLit() && OffS.litValue().isInt())) {
              Expr Cond;
              Tri T = condTri(Expr::eq(Off, Expr::intE(O)), PC, S, Cond);
              if (T == Tri::No)
                continue;
              if (T == Tri::Maybe)
                Under = simplify(Expr::andE(U2, Cond));
            }
            if (!permOk(*Blk, O, Ch->Size,
                        IsStore ? Perm::Writable : Perm::Readable)) {
              C.error(std::string("UB: ") + What +
                          " without sufficient permission",
                      Under);
              continue;
            }
            if (IsStore) {
              Result<std::vector<SMemVal>> Enc =
                  encodeSymbolic(StoredVal, *Ch);
              if (!Enc) {
                C.error(Enc.error(), Under);
                continue;
              }
              McSMem Next = *this;
              SBlock NB = *Blk;
              for (int64_t I = 0; I < Ch->Size; ++I)
                NB.Bytes.set(O + I, (*Enc)[static_cast<size_t>(I)]);
              Next.putBlock(Key, std::move(NB));
              C.ok(std::move(Next), StoredVal, Under);
            } else {
              Result<Expr> V = decodeSymbolic(*Blk, O, *Ch);
              if (!V) {
                C.error(V.error(), Under);
                continue;
              }
              C.ok(*this, V.take(), Under);
            }
          }
        });
      });
    });
    return C.Out;
  }

  if (Act == actMemcpy() || Act == actMemset() || Act == actDropPerm() ||
      Act == actBlockSize() || Act == actValidPtr()) {
    // Bulk/administrative operations require concrete offsets and lengths
    // (the library code always passes constants or loop counters, which
    // are concrete after unrolling).
    size_t N = Act == actMemcpy() ? 5 : (Act == actBlockSize() ? 1 : 4);
    if (Act == actValidPtr())
      N = 3;
    Result<std::vector<Expr>> A = splitArgsE(Arg, N);
    if (!A)
      return Err(A.error());
    std::vector<Value> Lits;
    for (Expr &E : *A) {
      Expr SE = simplify(E);
      if (!SE.isLit())
        return Err(std::string(Act.str()) +
                   " requires concrete arguments, got " + SE.toString());
      Lits.push_back(SE.litValue());
    }

    if (Act == actBlockSize()) {
      if (!Lits[0].isSym()) {
        C.error("UB: blockSize of a non-block");
        return C.Out;
      }
      const SBlock *Blk = findBlock(Expr::lit(Lits[0]));
      if (!Blk || Blk->Freed) {
        C.error("UB: blockSize of dead memory");
        return C.Out;
      }
      C.ok(*this, Expr::intE(Blk->Size));
      return C.Out;
    }
    if (Act == actValidPtr()) {
      const SBlock *Blk = Lits[0].isSym() ? findBlock(Expr::lit(Lits[0]))
                                          : nullptr;
      bool Valid = Blk && !Blk->Freed && Lits[1].isInt() &&
                   Lits[2].isInt() && Lits[1].asInt() >= 0 &&
                   Lits[1].asInt() + Lits[2].asInt() <= Blk->Size;
      C.ok(*this, Expr::boolE(Valid));
      return C.Out;
    }
    if (Act == actMemset()) {
      if (!Lits[0].isSym() || !Lits[1].isInt() || !Lits[2].isInt() ||
          !Lits[3].isInt())
        return Err("memset expects [block, off, len, byte]");
      const SBlock *Blk = findBlock(Expr::lit(Lits[0]));
      if (!Blk || Blk->Freed) {
        C.error("UB: memset on dead memory");
        return C.Out;
      }
      int64_t O = Lits[1].asInt(), Len = Lits[2].asInt();
      if (Len < 0 || O < 0 || O + Len > Blk->Size) {
        C.error("UB: out-of-bounds memset");
        return C.Out;
      }
      McSMem Next = *this;
      SBlock NB = *Blk;
      for (int64_t I = 0; I < Len; ++I) {
        SMemVal M;
        M.K = SMemVal::Byte;
        M.B = static_cast<uint8_t>(Lits[3].asInt() & 0xFF);
        NB.Bytes.set(O + I, M);
      }
      Next.putBlock(Expr::lit(Lits[0]), std::move(NB));
      C.ok(std::move(Next), Expr::boolE(true));
      return C.Out;
    }
    if (Act == actMemcpy()) {
      if (!Lits[0].isSym() || !Lits[2].isSym())
        return Err("memcpy expects block symbols");
      const SBlock *Dst = findBlock(Expr::lit(Lits[0]));
      const SBlock *Src = findBlock(Expr::lit(Lits[2]));
      if (!Dst || !Src || Dst->Freed || Src->Freed) {
        C.error("UB: memcpy on dead memory");
        return C.Out;
      }
      int64_t DO_ = Lits[1].asInt(), SO = Lits[3].asInt(),
              Len = Lits[4].asInt();
      if (Len < 0 || DO_ < 0 || SO < 0 || DO_ + Len > Dst->Size ||
          SO + Len > Src->Size) {
        C.error("UB: out-of-bounds memcpy");
        return C.Out;
      }
      McSMem Next = *this;
      SBlock NB = *Dst;
      for (int64_t I = 0; I < Len; ++I) {
        const SMemVal *M = Src->Bytes.lookup(SO + I);
        if (M)
          NB.Bytes.set(DO_ + I, *M);
        else
          NB.Bytes.erase(DO_ + I); // copy of uninitialised stays undef
      }
      Next.putBlock(Expr::lit(Lits[0]), std::move(NB));
      C.ok(std::move(Next), Expr::boolE(true));
      return C.Out;
    }
    // dropPerm
    if (!Lits[0].isSym() || !Lits[1].isInt() || !Lits[2].isInt() ||
        !Lits[3].isInt())
      return Err("dropPerm expects [block, off, len, perm]");
    const SBlock *Blk = findBlock(Expr::lit(Lits[0]));
    if (!Blk || Blk->Freed) {
      C.error("UB: dropPerm on dead memory");
      return C.Out;
    }
    int64_t O = Lits[1].asInt(), Len = Lits[2].asInt();
    if (Len < 0 || O < 0 || O + Len > Blk->Size) {
      C.error("UB: dropPerm out of bounds");
      return C.Out;
    }
    McSMem Next = *this;
    SBlock NB = *Blk;
    for (int64_t I = 0; I < Len; ++I) {
      const uint8_t *Cur = NB.PermOverrides.lookup(O + I);
      uint8_t Have = Cur ? *Cur : static_cast<uint8_t>(Perm::Writable);
      NB.PermOverrides.set(
          O + I, std::min(Have, static_cast<uint8_t>(Lits[3].asInt())));
    }
    Next.putBlock(Expr::lit(Lits[0]), std::move(NB));
    C.ok(std::move(Next), Expr::boolE(true));
    return C.Out;
  }

  if (Act == actComparePtr()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 3);
    if (!A)
      return Err(A.error());
    Expr OpE = simplify((*A)[0]);
    if (!OpE.isLit() || !OpE.litValue().isStr())
      return Err("comparePtr expects an operation name");
    std::string_view Op = OpE.litValue().asStr().str();
    Expr P1 = simplify((*A)[1]), P2 = simplify((*A)[2]);
    Result<std::pair<Expr, Expr>> B1 = splitPtr(P1), B2 = splitPtr(P2);
    if (!B1 || !B2) {
      C.error("UB: pointer comparison on non-pointers");
      return C.Out;
    }
    // Dangling-pointer comparison is UB (a §4.2 finding).
    Expr NullB = Expr::lit(Value::symV("$null"));
    for (const auto *BO : {&*B1, &*B2}) {
      if (BO->first.isLit() && !(BO->first == NullB)) {
        const SBlock *Blk = findBlock(BO->first);
        if (Blk && Blk->Freed) {
          C.error("UB: comparison of a freed pointer");
          return C.Out;
        }
      }
    }
    if (Op == "eq") {
      C.ok(*this, simplify(Expr::eq(P1, P2)));
      return C.Out;
    }
    // Relational: same live non-null block required.
    Expr SameBlock = Expr::eq(B1->first, B2->first);
    Expr NotNull = Expr::notE(Expr::eq(B1->first, NullB));
    C.checkOrError(simplify(Expr::andE(SameBlock, NotNull)),
                   Expr::boolE(true),
                   "UB: relational comparison of pointers into different "
                   "objects",
                   [&](Expr Under) {
                     BinOpKind K =
                         Op == "lt" ? BinOpKind::Lt : BinOpKind::Le;
                     C.ok(*this,
                          simplify(Expr::binOp(K, B1->second, B2->second)),
                          Under);
                   });
    return C.Out;
  }

  return Err("unknown MC action '" + std::string(Act.str()) + "'");
}

std::string McSMem::toString() const {
  std::string Out = "{";
  for (const auto &[B, Blk] : Blocks)
    Out += " " + B.toString() + "[" + std::to_string(Blk->Size) +
           (Blk->Freed ? ", freed" : "") + "]";
  return Out + " }";
}

//===----------------------------------------------------------------------===//
// Memory interpretation I_C
//===----------------------------------------------------------------------===//

Result<McCMem> gillian::legacy::interpretMemory(const Model &Eps,
                                            const McSMem &SMem) {
  McCMem Out;
  for (const auto &[BE, SBlk] : SMem.blocks()) {
    Result<Value> B = Eps.eval(BE);
    if (!B)
      return Err("interpretation failure on block " + BE.toString());
    if (!B->isSym())
      return Err("block interprets to a non-symbol");
    if (Out.findBlock(B->asSym()))
      return Err("blocks collapse under the model");
    CBlock CB;
    CB.Size = SBlk->Size;
    CB.Freed = SBlk->Freed;
    CB.Bytes.resize(static_cast<size_t>(SBlk->Size));
    CB.Perms.assign(static_cast<size_t>(SBlk->Size),
                    static_cast<uint8_t>(Perm::Writable));
    for (const auto &[O, P] : SBlk->PermOverrides)
      if (O >= 0 && O < CB.Size)
        CB.Perms[static_cast<size_t>(O)] = P;
    for (const auto &[O, M] : SBlk->Bytes) {
      if (O < 0 || O >= CB.Size)
        return Err("stored byte outside block bounds");
      CMemVal &CV = CB.Bytes[static_cast<size_t>(O)];
      if (M.K == SMemVal::Byte) {
        CV.K = CMemVal::Byte;
        CV.B = M.B;
        continue;
      }
      Result<Value> V = Eps.eval(M.FragVal);
      if (!V)
        return Err("interpretation failure on fragment " +
                   M.FragVal.toString());
      if (M.FragKind == ChunkKind::Ptr) {
        CV.K = CMemVal::Frag;
        CV.FragVal = *V;
        CV.FragKind = ChunkKind::Ptr;
        CV.FragIdx = M.FragIdx;
        CV.FragLen = M.FragLen;
        continue;
      }
      // Scalar fragments interpret to the *bytes* of the concrete value,
      // matching what a concrete store of that value writes.
      Chunk Ch{M.FragLen, 1, M.FragKind};
      Result<std::vector<CMemVal>> Enc = encodeConcrete(*V, Ch);
      if (!Enc)
        return Err("fragment does not encode concretely: " + Enc.error());
      CV = (*Enc)[M.FragIdx];
    }
    Out.putBlock(B->asSym(), std::move(CB));
  }
  return Out;
}
