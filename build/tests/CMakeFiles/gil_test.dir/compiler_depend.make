# Empty compiler generated dependencies file for gil_test.
# This may be replaced when dependencies are built.
