//===- obs/introspect/metrics_registry.h - Live metric sources -*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge between *per-run* counter sets and the process-wide /metrics
/// endpoint. ExecStats and SolverStats are instances owned by whatever
/// Interpreter / Solver is currently live — the HTTP server cannot reach
/// them by name. A run registers its sets for the duration of the run via
/// the RAII ScopedMetricsSource; a scrape renders every currently-live
/// source under the registry lock. Counter reads are relaxed-atomic, so
/// scraping mid-run is safe (and is the whole point).
///
/// Sources must outlive their registration — exactly what the RAII scope
/// guarantees (the guard is declared after the stats object it exposes).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_INTROSPECT_METRICS_REGISTRY_H
#define GILLIAN_OBS_INTROSPECT_METRICS_REGISTRY_H

#include "obs/introspect/prometheus.h"

#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace gillian::obs {

/// Renders one source's samples into the scrape in progress.
using MetricsFn = std::function<void(PromWriter &)>;

class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  /// Registers \p Fn; returns a token for remove(). The function will be
  /// invoked under the registry lock from the HTTP serving thread.
  uint64_t add(MetricsFn Fn);
  void remove(uint64_t Token);

  /// Invokes every registered source, registration order.
  void render(PromWriter &W) const;

private:
  mutable std::mutex Mu;
  std::vector<std::pair<uint64_t, MetricsFn>> Sources;
  uint64_t NextToken = 1;
};

/// RAII registration of one counter set (or any render callback) for the
/// enclosing scope — typically a suite run or a bench iteration:
///
///   ExecStats Stats;
///   ScopedMetricsSource Live([&](PromWriter &W) {
///     counterSetInto(W, Stats, {{"suite", Name}});
///   });
class ScopedMetricsSource {
public:
  explicit ScopedMetricsSource(MetricsFn Fn)
      : Token(MetricsRegistry::instance().add(std::move(Fn))) {}
  ~ScopedMetricsSource() { MetricsRegistry::instance().remove(Token); }

  ScopedMetricsSource(const ScopedMetricsSource &) = delete;
  ScopedMetricsSource &operator=(const ScopedMetricsSource &) = delete;

private:
  uint64_t Token;
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_INTROSPECT_METRICS_REGISTRY_H
