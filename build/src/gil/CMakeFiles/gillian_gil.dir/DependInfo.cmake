
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gil/expr.cpp" "src/gil/CMakeFiles/gillian_gil.dir/expr.cpp.o" "gcc" "src/gil/CMakeFiles/gillian_gil.dir/expr.cpp.o.d"
  "/root/repo/src/gil/ops.cpp" "src/gil/CMakeFiles/gillian_gil.dir/ops.cpp.o" "gcc" "src/gil/CMakeFiles/gillian_gil.dir/ops.cpp.o.d"
  "/root/repo/src/gil/parser.cpp" "src/gil/CMakeFiles/gillian_gil.dir/parser.cpp.o" "gcc" "src/gil/CMakeFiles/gillian_gil.dir/parser.cpp.o.d"
  "/root/repo/src/gil/prog.cpp" "src/gil/CMakeFiles/gillian_gil.dir/prog.cpp.o" "gcc" "src/gil/CMakeFiles/gillian_gil.dir/prog.cpp.o.d"
  "/root/repo/src/gil/value.cpp" "src/gil/CMakeFiles/gillian_gil.dir/value.cpp.o" "gcc" "src/gil/CMakeFiles/gillian_gil.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gillian_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
