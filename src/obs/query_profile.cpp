//===- obs/query_profile.cpp ----------------------------------------------===//

#include "obs/query_profile.h"

#include <algorithm>

using namespace gillian;
using namespace gillian::obs;

QueryOrigin &gillian::obs::detail::currentQueryOrigin() {
  thread_local QueryOrigin O;
  return O;
}

QueryProfiler &QueryProfiler::instance() {
  static QueryProfiler P;
  return P;
}

void QueryProfiler::record(uint64_t WallNs, QueryVerdict V, bool CacheHit,
                           uint64_t SessionResets) {
  const QueryOrigin &O = detail::currentQueryOrigin();
  if (O.ProcId == 0) {
    UnattributedNs.fetch_add(WallNs, std::memory_order_relaxed);
    UnattributedQueries.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint64_t Key = keyOf(O);
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mu);
  SiteCell &C = S.Sites.try_emplace(Key, SiteCell{O.ProcId, O.CmdIdx})
                    .first->second;
  ++C.Calls;
  C.WallNs += WallNs;
  switch (V) {
  case QueryVerdict::Sat: ++C.Sat; break;
  case QueryVerdict::Unsat: ++C.Unsat; break;
  case QueryVerdict::Unknown: ++C.Unknown; break;
  }
  if (CacheHit)
    ++C.CacheHits;
  else
    ++C.CacheMisses;
  C.SessionResets += SessionResets;
}

std::vector<QueryProfiler::Site> QueryProfiler::snapshotSorted() const {
  std::vector<Site> Out;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &[Key, C] : S.Sites) {
      (void)Key;
      Site T;
      T.Proc = std::string(InternedString::fromRaw(C.ProcId).str());
      T.CmdIdx = C.CmdIdx;
      T.Calls = C.Calls;
      T.WallNs = C.WallNs;
      T.Sat = C.Sat;
      T.Unsat = C.Unsat;
      T.Unknown = C.Unknown;
      T.CacheHits = C.CacheHits;
      T.CacheMisses = C.CacheMisses;
      T.SessionResets = C.SessionResets;
      Out.push_back(std::move(T));
    }
  }
  std::sort(Out.begin(), Out.end(), [](const Site &A, const Site &B) {
    if (A.WallNs != B.WallNs)
      return A.WallNs > B.WallNs;
    if (A.Proc != B.Proc)
      return A.Proc < B.Proc; // deterministic tie-break
    return A.CmdIdx < B.CmdIdx;
  });
  return Out;
}

std::vector<QueryProfiler::Site> QueryProfiler::topN(size_t N) const {
  std::vector<Site> All = snapshotSorted();
  if (All.size() > N)
    All.resize(N);
  return All;
}

uint64_t QueryProfiler::attributedNs() const {
  uint64_t Sum = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &[Key, C] : S.Sites) {
      (void)Key;
      Sum += C.WallNs;
    }
  }
  return Sum;
}

uint64_t QueryProfiler::unattributedNs() const {
  return UnattributedNs.load(std::memory_order_relaxed);
}

uint64_t QueryProfiler::queries() const {
  uint64_t Q = UnattributedQueries.load(std::memory_order_relaxed);
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &[Key, C] : S.Sites) {
      (void)Key;
      Q += C.Calls;
    }
  }
  return Q;
}

void QueryProfiler::jsonInto(JsonWriter &W, size_t N) const {
  W.beginArray();
  for (const Site &T : topN(N)) {
    W.beginObject();
    W.field("proc", T.Proc);
    W.field("cmd_idx", static_cast<uint64_t>(T.CmdIdx));
    W.field("calls", T.Calls);
    W.field("wall_ns", T.WallNs);
    W.field("sat", T.Sat);
    W.field("unsat", T.Unsat);
    W.field("unknown", T.Unknown);
    W.field("cache_hits", T.CacheHits);
    W.field("cache_misses", T.CacheMisses);
    W.field("session_resets", T.SessionResets);
    W.endObject();
  }
  W.endArray();
}

std::string QueryProfiler::json(size_t N) const {
  JsonWriter W;
  jsonInto(W, N);
  return W.take();
}

void QueryProfiler::reset() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Sites.clear();
  }
  UnattributedNs.store(0, std::memory_order_relaxed);
  UnattributedQueries.store(0, std::memory_order_relaxed);
}
