#!/usr/bin/env python3
"""Performance-trend tracking and regression gate for bench_engine_scaling.

Stdlib only. Three subcommands around the driver's trailing JSON line
(the `worker_sweep` medians are the tracked series):

  append   run the bench N times (or read saved JSON lines), take the
           per-worker-count median wall, and append one dated record to
           the trend file (BENCH_trend.json, a JSON array).
  seed     same measurement, written as the committed baseline
           (BENCH_10.json) that `gate` compares against.
  gate     same measurement, compared against the baseline: exits 1 if
           any worker count's median wall regressed more than
           --tolerance (default 15%). Faster-than-baseline is never an
           error (ratchet manually by re-seeding).

Examples:
  scripts/bench_trend.py seed   --bench build/bench/bench_engine_scaling
  scripts/bench_trend.py append --bench build/bench/bench_engine_scaling
  scripts/bench_trend.py gate   --bench build/bench/bench_engine_scaling
  scripts/bench_trend.py gate   --from-json run1.json run2.json run3.json
"""

import argparse
import datetime
import json
import statistics
import subprocess
import sys

DEFAULT_BENCH = "build/bench/bench_engine_scaling"
DEFAULT_TREND = "BENCH_trend.json"
DEFAULT_BASELINE = "BENCH_10.json"


def run_bench_once(bench):
    """Runs the driver and returns its parsed trailing JSON line."""
    proc = subprocess.run(
        [bench, "--benchmark_filter=NONE", "--json"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        check=True,
        text=True,
    )
    last = proc.stdout.strip().splitlines()[-1]
    return json.loads(last)


def load_json_line(path):
    with open(path) as f:
        text = f.read().strip()
    # Accept either a bare JSON object or full driver stdout.
    return json.loads(text.splitlines()[-1])


def collect(args):
    """Returns a list of parsed bench JSON objects per --from-json/--runs."""
    if args.from_json:
        return [load_json_line(p) for p in args.from_json]
    return [run_bench_once(args.bench) for _ in range(args.runs)]


def medians(results):
    """Per-worker-count median wall over the collected runs."""
    by_workers = {}
    for r in results:
        if r.get("bench") != "engine_scaling":
            sys.exit(f"error: expected engine_scaling JSON, got {r.get('bench')!r}")
        for row in r["worker_sweep"]:
            by_workers.setdefault(str(row["workers"]), []).append(row["time_s"])
    return {w: round(statistics.median(v), 6) for w, v in sorted(by_workers.items(), key=lambda kv: int(kv[0]))}


def git_head():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            check=True, text=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def record(args, results):
    r0 = results[0]
    return {
        "bench": "engine_scaling",
        "utc": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "commit": git_head(),
        "runs": len(results),
        "paths": r0.get("paths"),
        "strategy": r0.get("strategy"),
        "wall_s": medians(results),
    }


def cmd_append(args):
    rec = record(args, collect(args))
    try:
        with open(args.trend) as f:
            trend = json.load(f)
        if not isinstance(trend, list):
            sys.exit(f"error: {args.trend} is not a JSON array")
    except FileNotFoundError:
        trend = []
    trend.append(rec)
    with open(args.trend, "w") as f:
        json.dump(trend, f, indent=1)
        f.write("\n")
    print(f"appended run {len(trend)} to {args.trend}: wall_s={rec['wall_s']}")


def cmd_seed(args):
    rec = record(args, collect(args))
    with open(args.out, "w") as f:
        json.dump(rec, f, indent=1)
        f.write("\n")
    print(f"seeded baseline {args.out}: wall_s={rec['wall_s']}")


def cmd_gate(args):
    with open(args.baseline) as f:
        base = json.load(f)
    cur = medians(collect(args))
    failed = []
    for workers, base_wall in base["wall_s"].items():
        if workers not in cur:
            print(f"warning: baseline worker count {workers} missing from current run")
            continue
        ratio = cur[workers] / base_wall if base_wall > 0 else 1.0
        verdict = "REGRESSED" if ratio > 1 + args.tolerance else "ok"
        print(f"workers={workers}: baseline {base_wall:.3f}s, current "
              f"{cur[workers]:.3f}s ({ratio:.1%} of baseline) {verdict}")
        if verdict == "REGRESSED":
            failed.append(workers)
    if failed:
        print(f"FAIL: wall regression > {args.tolerance:.0%} at workers "
              f"{', '.join(failed)} (baseline {args.baseline}; re-seed with "
              f"'bench_trend.py seed' if intentional)")
        sys.exit(1)
    print(f"PASS: all worker counts within {args.tolerance:.0%} of {args.baseline}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    def common(p):
        p.add_argument("--bench", default=DEFAULT_BENCH,
                       help=f"bench_engine_scaling binary (default {DEFAULT_BENCH})")
        p.add_argument("--runs", type=int, default=3,
                       help="measurement repetitions for the median (default 3)")
        p.add_argument("--from-json", nargs="+", metavar="FILE",
                       help="use saved driver JSON lines instead of running")

    p = sub.add_parser("append", help="append a dated median record to the trend file")
    common(p)
    p.add_argument("--trend", default=DEFAULT_TREND)
    p.set_defaults(fn=cmd_append)

    p = sub.add_parser("seed", help="write the committed baseline")
    common(p)
    p.add_argument("--out", default=DEFAULT_BASELINE)
    p.set_defaults(fn=cmd_seed)

    p = sub.add_parser("gate", help="fail on >tolerance wall regression vs the baseline")
    common(p)
    p.add_argument("--baseline", default=DEFAULT_BASELINE)
    p.add_argument("--tolerance", type=float, default=0.15)
    p.set_defaults(fn=cmd_gate)

    args = ap.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()
