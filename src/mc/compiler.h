//===- mc/compiler.h - MC -> GIL compiler ----------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MC-to-GIL compiler (the Gillian-C compiler of §4.2): a typed,
/// C#minor-style lowering. Control flow compiles trivially to GIL gotos;
/// memory management is restated in terms of the identified actions of
/// the C memory model (field/index accesses become chunked load/store;
/// allocation pairs the GIL uSym allocator with the alloc action; pointer
/// comparisons go through comparePtr so undefined behaviour is caught).
/// Like C#minor, the only deviation from source semantics is a fixed
/// (left-to-right) argument evaluation order.
///
/// Pointers are GIL lists [block, offset]; pointer arithmetic scales by
/// the pointee size at compile time. Integer division/modulo emit
/// explicit zero-divisor guards — C undefined behaviour becomes explicit
/// control flow, exactly as the paper's approach requires.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_MC_COMPILER_H
#define GILLIAN_MC_COMPILER_H

#include "gil/prog.h"
#include "mc/ast.h"
#include "support/result.h"

namespace gillian::mc {

/// Compiles \p P (type errors are compile errors).
Result<Prog> compileMc(const CProgram &P);

/// Parses and compiles in one step.
Result<Prog> compileMcSource(std::string_view Source);

} // namespace gillian::mc

#endif // GILLIAN_MC_COMPILER_H
