//===- tests/soundness/replay_mc_test.cpp ---------------------------------===//
//
// Theorem 3.6 instantiated for the C memory model: symbolic MC traces
// replay concretely — chunked loads/stores, fragments, symbolic offsets,
// UB fault branches. The byte-level encode/decode agreement between the
// symbolic and concrete memories is exactly what these replays check.
//
//===----------------------------------------------------------------------===//

#include "replay_harness.h"

#include "mc/compiler.h"
#include "mc/memory.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::mc;
using namespace gillian::testing;

namespace {

struct ReplayCase {
  const char *Name;
  const char *Source;
  int MinTraces;
};

class McReplay : public ::testing::TestWithParam<ReplayCase> {};

} // namespace

TEST_P(McReplay, TerminalTracesReplayConcretely) {
  const ReplayCase &C = GetParam();
  Result<Prog> P = compileMcSource(C.Source);
  ASSERT_TRUE(P.ok()) << P.error();
  ReplaySummary Sum = replayAllTraces<McSMem, McCMem>(*P, "main");
  EXPECT_GE(Sum.TracesReplayed, C.MinTraces);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, McReplay,
    ::testing::Values(
        ReplayCase{"scalar_memory_roundtrip",
                   R"(fn main() -> i64 {
                        var v: i64 = symb_i64();
                        var p: ptr<i64> = alloc(i64, 2);
                        p[0] = v;
                        p[1] = v * 2;
                        return p[0] + p[1];
                      })",
                   1},
        ReplayCase{"struct_fields",
                   R"(struct Pair { a: i64; b: f64; }
                      fn main() -> i64 {
                        var v: i64 = symb_i64();
                        var p: ptr<Pair> = alloc(Pair, 1);
                        p->a = v;
                        p->b = 2.5;
                        if (p->a < 0) { return -p->a; }
                        return p->a;
                      })",
                   2},
        ReplayCase{"symbolic_index_worlds",
                   R"(fn main() -> i64 {
                        var i: i64 = symb_i64();
                        assume(0 <= i && i < 3);
                        var p: ptr<i64> = alloc(i64, 3);
                        p[0] = 5; p[1] = 6; p[2] = 7;
                        return p[i];
                      })",
                   3},
        ReplayCase{"oob_fault_world",
                   R"(fn main() -> i64 {
                        var i: i64 = symb_i64();
                        assume(0 <= i && i <= 2);
                        var p: ptr<i64> = alloc(i64, 2);
                        p[i] = 9;
                        return 0;
                      })",
                   2},
        ReplayCase{"free_and_uaf_world",
                   R"(fn main() -> i64 {
                        var c: i64 = symb_i64();
                        var p: ptr<i64> = alloc(i64, 1);
                        p[0] = 3;
                        if (c == 0) { free(p); }
                        return p[0];
                      })",
                   2},
        ReplayCase{"narrow_bytes",
                   R"(fn main() -> i64 {
                        var p: ptr<i8> = alloc(i8, 4);
                        memset(p, 200, 4);
                        return p[0] + p[3];
                      })",
                   1},
        ReplayCase{"pointer_equality",
                   R"(struct Node { val: i64; next: ptr<Node>; }
                      fn main() -> i64 {
                        var a: ptr<Node> = alloc(Node, 1);
                        a->val = 1;
                        a->next = a;
                        if (a->next == a) { return 1; }
                        return 0;
                      })",
                   1}),
    [](const ::testing::TestParamInfo<ReplayCase> &Info) {
      return Info.param.Name;
    });
