//===- engine/scheduler/frontier.h - Strategy-owned frontiers --*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-worker frontier of the exploration pool, owned by the
/// selection strategy: what push, pop and steal *mean* is a strategy
/// property, not a pool property (the engine-level search-strategy
/// pluggability of the Gillian/Soteria platform papers).
///
///   * OldestFirst — a deque: LIFO pop (depth-first locality, bounded
///     frontier), FIFO steal (thieves take the oldest/shallowest forks,
///     which head the largest untapped subtrees). Bit-identical to the
///     pre-strategy pool.
///   * RandomPath — a bag: pop and steal swap-remove uniformly random
///     elements from a deterministic per-frontier xorshift generator, so
///     a seeded run reproduces its pick sequence exactly.
///   * SubtreeSize / CoverageGuided — a binary max-heap on the caller-
///     computed priority: pop takes the highest-priority configuration;
///     thieves also steal from the top (the largest estimated subtree /
///     the most coverage-promising work is exactly what an idle worker
///     should take over).
///
/// A Frontier is NOT thread-safe; the pool guards each worker's instance
/// with that worker's mutex, exactly as it guarded the raw deques.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_SCHEDULER_FRONTIER_H
#define GILLIAN_ENGINE_SCHEDULER_FRONTIER_H

#include "engine/scheduler/scheduler_options.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

namespace gillian {

/// splitmix64: the seed mixer used to derive independent per-worker
/// generator states from one SchedulerOptions::Seed.
inline uint64_t mixSeed(uint64_t Seed, uint64_t Salt) {
  uint64_t Z = Seed + Salt * 0x9E3779B97F4A7C15ull + 0x9E3779B97F4A7C15ull;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

template <typename Task> class Frontier {
public:
  /// One queued configuration with the priority the scheduler computed
  /// for it at push time (0 and unused for OldestFirst / RandomPath).
  struct Entry {
    Task T;
    uint64_t Pri = 0;
  };

  Frontier() = default;
  Frontier(SelectionStrategy S, uint64_t Seed)
      : Strat(S), RngState(mixSeed(Seed, 0x5EED) | 1) {}

  SelectionStrategy strategy() const { return Strat; }
  size_t size() const { return Q.size(); }
  bool empty() const { return Q.empty(); }

  void push(Task T, uint64_t Pri) {
    Q.push_back(Entry{std::move(T), Pri});
    if (isHeap())
      std::push_heap(Q.begin(), Q.end(), heapLess);
    // OldestFirst / RandomPath keep plain insertion order; pop decides.
  }

  /// The strategy's pick: LIFO back for OldestFirst, a seeded uniform
  /// pick for RandomPath, the max-priority root for the heap strategies.
  std::optional<Task> pop() {
    if (Q.empty())
      return std::nullopt;
    switch (Strat) {
    case SelectionStrategy::OldestFirst:
      break; // back of the deque
    case SelectionStrategy::RandomPath:
      swapToBack(nextRandom(Q.size()));
      break;
    case SelectionStrategy::SubtreeSize:
    case SelectionStrategy::CoverageGuided:
      std::pop_heap(Q.begin(), Q.end(), heapLess);
      break;
    }
    Task T = std::move(Q.back().T);
    Q.pop_back();
    return T;
  }

  /// Steal semantics, per strategy: moves up to \p K entries into \p Out
  /// (priorities preserved so the thief can re-queue the surplus).
  /// OldestFirst takes from the *front* (the oldest, shallowest forks);
  /// RandomPath takes seeded random picks (the victim's generator — the
  /// call runs under the victim's lock); the heap strategies take from
  /// the top, handing the thief the best-ranked work.
  size_t stealInto(size_t K, std::vector<Entry> &Out) {
    size_t N = std::min(K, Q.size());
    for (size_t I = 0; I < N; ++I) {
      switch (Strat) {
      case SelectionStrategy::OldestFirst:
        Out.push_back(std::move(Q.front()));
        Q.pop_front();
        continue;
      case SelectionStrategy::RandomPath:
        swapToBack(nextRandom(Q.size()));
        break;
      case SelectionStrategy::SubtreeSize:
      case SelectionStrategy::CoverageGuided:
        std::pop_heap(Q.begin(), Q.end(), heapLess);
        break;
      }
      Out.push_back(std::move(Q.back()));
      Q.pop_back();
    }
    return N;
  }

private:
  bool isHeap() const {
    return Strat == SelectionStrategy::SubtreeSize ||
           Strat == SelectionStrategy::CoverageGuided;
  }

  /// Max-heap on priority. std::*_heap build max-heaps from operator<,
  /// so "less" compares priorities directly.
  static bool heapLess(const Entry &A, const Entry &B) {
    return A.Pri < B.Pri;
  }

  /// xorshift64*: deterministic, cheap, and good enough to spread picks
  /// over a frontier (this is exploration-order jitter, not cryptography).
  uint64_t nextRandom(size_t Bound) {
    uint64_t X = RngState;
    X ^= X >> 12;
    X ^= X << 25;
    X ^= X >> 27;
    RngState = X;
    return (X * 0x2545F4914F6CDD1Dull) % Bound;
  }

  void swapToBack(size_t Idx) {
    if (Idx + 1 != Q.size())
      std::swap(Q[Idx], Q.back());
  }

  SelectionStrategy Strat = SelectionStrategy::OldestFirst;
  uint64_t RngState = 1;
  /// Deque even for the bag/heap strategies: only OldestFirst needs the
  /// front-pop, and the others use back/indexed access the deque also
  /// provides — one container, no variant juggling.
  std::deque<Entry> Q;
};

} // namespace gillian

#endif // GILLIAN_ENGINE_SCHEDULER_FRONTIER_H
