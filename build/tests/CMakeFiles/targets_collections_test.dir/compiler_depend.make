# Empty compiler generated dependencies file for targets_collections_test.
# This may be replaced when dependencies are built.
