//===- tests/while/memory_test.cpp ----------------------------------------===//
//
// Direct unit tests of the Fig. 3 action rules, concrete and symbolic,
// including the branching aliasing behaviour of [S-Lookup] and
// [S-Mutate-*], plus the §3.3 interpretation function I_W.
//
//===----------------------------------------------------------------------===//

#include "while_lang/memory.h"

#include "while_lang/compiler.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::whilelang;

namespace {

Value argL(std::initializer_list<Value> Vs) { return Value::listV(Vs); }

InternedString is(std::string_view S) { return InternedString::get(S); }

} // namespace

TEST(WhileCMem, MutateThenLookup) {
  WhileCMem M;
  Value L = Value::symV("$l");
  ASSERT_TRUE(M.execAction(actMutate(), argL({L, Value::strV("p"),
                                              Value::intV(7)}))
                  .ok());
  Result<Value> R = M.execAction(actLookup(), argL({L, Value::strV("p")}));
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->asInt(), 7);
}

TEST(WhileCMem, LookupMissesFault) {
  WhileCMem M;
  Value L = Value::symV("$l");
  EXPECT_FALSE(M.execAction(actLookup(), argL({L, Value::strV("p")})).ok())
      << "unknown object";
  ASSERT_TRUE(M.execAction(actMutate(), argL({L, Value::strV("p"),
                                              Value::intV(1)}))
                  .ok());
  EXPECT_FALSE(M.execAction(actLookup(), argL({L, Value::strV("q")})).ok())
      << "missing property";
}

TEST(WhileCMem, DisposeLifecycle) {
  WhileCMem M;
  Value L = Value::symV("$l");
  ASSERT_TRUE(M.execAction(actMutate(), argL({L, Value::strV("p"),
                                              Value::intV(1)}))
                  .ok());
  ASSERT_TRUE(M.execAction(actDispose(), argL({L})).ok());
  EXPECT_FALSE(M.execAction(actLookup(), argL({L, Value::strV("p")})).ok());
  EXPECT_FALSE(M.execAction(actMutate(), argL({L, Value::strV("p"),
                                               Value::intV(2)}))
                   .ok());
  EXPECT_FALSE(M.execAction(actDispose(), argL({L})).ok())
      << "double dispose";
}

TEST(WhileCMem, NonLocationArgsFault) {
  WhileCMem M;
  EXPECT_FALSE(
      M.execAction(actLookup(), argL({Value::intV(1), Value::strV("p")}))
          .ok());
  EXPECT_FALSE(M.execAction(actLookup(), Value::intV(3)).ok())
      << "malformed argument list";
  EXPECT_FALSE(M.execAction(is("warp"), argL({})).ok()) << "unknown action";
}

// --- Symbolic --------------------------------------------------------------

namespace {

/// Builds [loc, "prop"] / [loc, "prop", v] argument lists.
Expr eArgs(std::initializer_list<Expr> Es) { return Expr::list(Es); }

} // namespace

TEST(WhileSMem, ConcreteKeysTakeFastPath) {
  WhileSMem M;
  Solver S;
  PathCondition PC;
  M.setProp(Expr::lit(Value::symV("$a")), is("p"), Expr::intE(1));
  M.setProp(Expr::lit(Value::symV("$b")), is("p"), Expr::intE(2));
  auto Br = M.execAction(actLookup(),
                         eArgs({Expr::lit(Value::symV("$b")),
                                Expr::strE("p")}),
                         PC, S);
  ASSERT_TRUE(Br.ok());
  ASSERT_EQ(Br->size(), 1u) << "distinct symbols cannot alias";
  EXPECT_FALSE((*Br)[0].IsError);
  EXPECT_EQ((*Br)[0].Ret, Expr::intE(2));
}

TEST(WhileSMem, SymbolicLocationBranchesOverAliases) {
  // [S-Lookup] with a logical-variable location: one branch per stored
  // object it may equal, plus the possible miss.
  WhileSMem M;
  Solver S;
  PathCondition PC;
  PC.add(Expr::hasType(Expr::lvar("#l"), GilType::Sym));
  M.setProp(Expr::lit(Value::symV("$a")), is("p"), Expr::intE(1));
  M.setProp(Expr::lit(Value::symV("$b")), is("p"), Expr::intE(2));
  auto Br = M.execAction(actLookup(),
                         eArgs({Expr::lvar("#l"), Expr::strE("p")}), PC, S);
  ASSERT_TRUE(Br.ok());
  int Successes = 0, Errors = 0;
  for (auto &B : *Br) {
    EXPECT_TRUE(B.Cond) << "contingent branches carry their condition";
    B.IsError ? ++Errors : ++Successes;
  }
  EXPECT_EQ(Successes, 2) << "may alias $a or $b";
  EXPECT_EQ(Errors, 1) << "or miss entirely";
}

TEST(WhileSMem, PathConditionPrunesAliases) {
  // With #l == $a in the path condition, only the $a branch survives.
  WhileSMem M;
  Solver S;
  PathCondition PC;
  PC.add(Expr::hasType(Expr::lvar("#l"), GilType::Sym));
  PC.add(Expr::eq(Expr::lvar("#l"), Expr::lit(Value::symV("$a"))));
  M.setProp(Expr::lit(Value::symV("$a")), is("p"), Expr::intE(1));
  M.setProp(Expr::lit(Value::symV("$b")), is("p"), Expr::intE(2));
  auto Br = M.execAction(actLookup(),
                         eArgs({Expr::lvar("#l"), Expr::strE("p")}), PC, S);
  ASSERT_TRUE(Br.ok());
  int Successes = 0;
  for (auto &B : *Br)
    if (!B.IsError) {
      ++Successes;
      EXPECT_EQ(B.Ret, Expr::intE(1));
    }
  EXPECT_EQ(Successes, 1);
}

TEST(WhileSMem, MutateAbsentCreatesObject) {
  // [S-Mutate-Absent]: mutation at a fresh location extends the memory.
  WhileSMem M;
  Solver S;
  PathCondition PC;
  Expr Fresh = Expr::lit(Value::symV("$new"));
  auto Br = M.execAction(actMutate(),
                         eArgs({Fresh, Expr::strE("p"), Expr::intE(9)}), PC,
                         S);
  ASSERT_TRUE(Br.ok());
  ASSERT_EQ(Br->size(), 1u);
  const Expr *V = (*Br)[0].Mem.objects().lookup(Fresh)->lookup(is("p"));
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(*V, Expr::intE(9));
}

TEST(WhileSMem, MutatePresentOverwritesAllAliases) {
  WhileSMem M;
  Solver S;
  PathCondition PC;
  PC.add(Expr::hasType(Expr::lvar("#l"), GilType::Sym));
  M.setProp(Expr::lit(Value::symV("$a")), is("p"), Expr::intE(1));
  auto Br = M.execAction(actMutate(),
                         eArgs({Expr::lvar("#l"), Expr::strE("p"),
                                Expr::intE(5)}),
                         PC, S);
  ASSERT_TRUE(Br.ok());
  // Branch 1: #l == $a (overwrite); branch 2: #l fresh (extend).
  ASSERT_EQ(Br->size(), 2u);
  bool SawOverwrite = false, SawExtend = false;
  for (auto &B : *Br) {
    ASSERT_FALSE(B.IsError);
    if (const WhileSMem::PropMap *Props =
            B.Mem.objects().lookup(Expr::lit(Value::symV("$a")))) {
      const Expr *V = Props->lookup(is("p"));
      if (V && *V == Expr::intE(5))
        SawOverwrite = true;
    }
    if (B.Mem.objects().contains(Expr::lvar("#l")))
      SawExtend = true;
  }
  EXPECT_TRUE(SawOverwrite);
  EXPECT_TRUE(SawExtend);
}

TEST(WhileSMem, DisposeRemovesAndFaultsAfter) {
  WhileSMem M;
  Solver S;
  PathCondition PC;
  Expr A = Expr::lit(Value::symV("$a"));
  M.setProp(A, is("p"), Expr::intE(1));
  auto Br = M.execAction(actDispose(), eArgs({A}), PC, S);
  ASSERT_TRUE(Br.ok());
  ASSERT_EQ(Br->size(), 1u);
  const WhileSMem &M2 = (*Br)[0].Mem;
  EXPECT_FALSE(M2.objects().contains(A));
  auto Br2 = M2.execAction(actLookup(), eArgs({A, Expr::strE("p")}), PC, S);
  ASSERT_TRUE(Br2.ok());
  ASSERT_EQ(Br2->size(), 1u);
  EXPECT_TRUE((*Br2)[0].IsError) << "use-after-dispose";
}

// --- Interpretation I_W (§3.3) ---------------------------------------------

TEST(WhileInterp, InterpretsLocationsAndValues) {
  WhileSMem SM;
  SM.setProp(Expr::lit(Value::symV("$a")), is("p"),
             Expr::add(Expr::lvar("#x"), Expr::intE(1)));
  Model Eps;
  Eps.bind(is("#x"), Value::intV(41));
  Result<WhileCMem> CM = interpretMemory(Eps, SM);
  ASSERT_TRUE(CM.ok()) << CM.error();
  Result<Value> V = CM->execAction(
      actLookup(), argL({Value::symV("$a"), Value::strV("p")}));
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(V->asInt(), 42);
}

TEST(WhileInterp, SymbolicLocationResolvesThroughModel) {
  WhileSMem SM;
  SM.setProp(Expr::lvar("#l"), is("p"), Expr::intE(1));
  Model Eps;
  Eps.bind(is("#l"), Value::symV("$concrete"));
  Result<WhileCMem> CM = interpretMemory(Eps, SM);
  ASSERT_TRUE(CM.ok()) << CM.error();
  EXPECT_TRUE(CM->objects().contains(is("$concrete")));
}

TEST(WhileInterp, FreeVariableFails) {
  WhileSMem SM;
  SM.setProp(Expr::lit(Value::symV("$a")), is("p"), Expr::lvar("#free"));
  EXPECT_FALSE(interpretMemory(Model(), SM).ok());
}

TEST(WhileInterp, CollapsingLocationsFail) {
  // Two symbolic locations mapping to one concrete symbol: ⊎ undefined.
  WhileSMem SM;
  SM.setProp(Expr::lvar("#l1"), is("p"), Expr::intE(1));
  SM.setProp(Expr::lvar("#l2"), is("p"), Expr::intE(2));
  Model Eps;
  Eps.bind(is("#l1"), Value::symV("$same"));
  Eps.bind(is("#l2"), Value::symV("$same"));
  EXPECT_FALSE(interpretMemory(Eps, SM).ok());
}
