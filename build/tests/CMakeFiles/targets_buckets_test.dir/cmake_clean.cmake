file(REMOVE_RECURSE
  "CMakeFiles/targets_buckets_test.dir/targets/buckets_test.cpp.o"
  "CMakeFiles/targets_buckets_test.dir/targets/buckets_test.cpp.o.d"
  "targets_buckets_test"
  "targets_buckets_test.pdb"
  "targets_buckets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targets_buckets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
