
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gil/expr_test.cpp" "tests/CMakeFiles/gil_test.dir/gil/expr_test.cpp.o" "gcc" "tests/CMakeFiles/gil_test.dir/gil/expr_test.cpp.o.d"
  "/root/repo/tests/gil/ops_test.cpp" "tests/CMakeFiles/gil_test.dir/gil/ops_test.cpp.o" "gcc" "tests/CMakeFiles/gil_test.dir/gil/ops_test.cpp.o.d"
  "/root/repo/tests/gil/parser_test.cpp" "tests/CMakeFiles/gil_test.dir/gil/parser_test.cpp.o" "gcc" "tests/CMakeFiles/gil_test.dir/gil/parser_test.cpp.o.d"
  "/root/repo/tests/gil/value_test.cpp" "tests/CMakeFiles/gil_test.dir/gil/value_test.cpp.o" "gcc" "tests/CMakeFiles/gil_test.dir/gil/value_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gil/CMakeFiles/gillian_gil.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gillian_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
