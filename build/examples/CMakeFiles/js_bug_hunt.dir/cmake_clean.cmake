file(REMOVE_RECURSE
  "CMakeFiles/js_bug_hunt.dir/js_bug_hunt.cpp.o"
  "CMakeFiles/js_bug_hunt.dir/js_bug_hunt.cpp.o.d"
  "js_bug_hunt"
  "js_bug_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_bug_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
