//===- mc/ast.h - MC, the Gillian-C target language -------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MC is the C-like language of our Gillian-C reproduction (§4.2):
/// statically typed, with structs, typed pointers, heap allocation and
/// pointer arithmetic, compiled through a C#minor-style lowering onto the
/// CompCert-style memory model. Example:
///
///   struct Node { val: i64; next: ptr<Node>; }
///   fn push(head: ptr<Node>, v: i64) -> ptr<Node> {
///     var n: ptr<Node> = alloc(Node, 1);
///     n->val = v;
///     n->next = head;
///     return n;
///   }
///
/// Builtins: alloc(T, n), free(p), memcpy(d, s, bytes), memset(p, b,
/// bytes), sizeof(T), symb_i64(), symb_f64(), assume(e), assert(e);
/// function-style casts i8(e) / i32(e) / i64(e) / f64(e).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_MC_AST_H
#define GILLIAN_MC_AST_H

#include "mc/types.h"

#include <memory>
#include <vector>

namespace gillian::mc {

enum class CExprKind : uint8_t {
  IntLit,
  FloatLit,
  Null,
  Var,
  Unary,  ///< - !
  Binary, ///< + - * / % == != < <= > >= && ||
  Field,  ///< base->name
  Index,  ///< base[idx]
  Call,   ///< f(args), including builtins and casts
  SizeOf, ///< sizeof(T)
  Alloc,  ///< alloc(T, count)
};

enum class CUnOp : uint8_t { Neg, Not };
enum class CBinOp : uint8_t {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
};

struct CExpr;
using CExprPtr = std::shared_ptr<CExpr>;

struct CExpr {
  CExprKind Kind;
  int64_t IntVal = 0;
  double FloatVal = 0;
  std::string Name;        ///< Var / Field name / Call callee
  CUnOp UOp = CUnOp::Neg;
  CBinOp BOp = CBinOp::Add;
  CExprPtr Lhs, Rhs;       ///< operands / Field base / Index base+idx
  std::vector<CExprPtr> Args;
  McType Type;             ///< SizeOf / Alloc element type
  int Line = 0;
};

enum class CStmtKind : uint8_t {
  VarDecl,  ///< var x: T = e;
  Assign,   ///< x = e;
  FieldSet, ///< base->f = e;
  IndexSet, ///< base[i] = e;
  ExprStmt, ///< e;  (calls, free, memcpy, ...)
  If,
  While,
  For,
  Return,
  Assume,
  Assert,
};

struct CStmt {
  CStmtKind Kind;
  std::string Name;    ///< VarDecl/Assign target; FieldSet field
  McType DeclType;     ///< VarDecl
  CExprPtr E;          ///< value / condition / return
  CExprPtr Base, Idx;  ///< FieldSet/IndexSet
  std::vector<CStmt> Then, Else, Init, Step;
  int Line = 0;
};

struct CFunc {
  std::string Name;
  std::vector<std::pair<std::string, McType>> Params;
  McType RetType;
  std::vector<CStmt> Body;
};

struct CStructDecl {
  std::string Name;
  std::vector<std::pair<std::string, McType>> Fields;
};

struct CProgram {
  std::vector<CStructDecl> Structs;
  std::vector<CFunc> Funcs;

  const CFunc *find(std::string_view Name) const {
    for (const CFunc &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

} // namespace gillian::mc

#endif // GILLIAN_MC_AST_H
