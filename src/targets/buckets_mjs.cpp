//===- targets/buckets_mjs.cpp --------------------------------------------===//

#include "targets/buckets_mjs.h"

using namespace gillian::targets;

namespace {

/// The library. Function-style API (no closures/this in MJS); every
/// structure is a plain object whose shape mirrors the Buckets.js
/// implementation it stands in for.
constexpr std::string_view Library = R"mjs(
// ---------- arrays: utilities over JS arrays --------------------------
function arr_new() { return [];
}
function arr_push(a, v) {
  a[a.length] = v;
  a.length = a.length + 1;
  return a;
}
function arr_pop(a) {
  if (a.length === 0) { return undefined; }
  var v = a[a.length - 1];
  delete a[a.length - 1];
  a.length = a.length - 1;
  return v;
}
function arr_indexOf(a, v) {
  for (var i = 0; i < a.length; i = i + 1) {
    if (a[i] === v) { return i; }
  }
  return -1;
}
function arr_contains(a, v) { return arr_indexOf(a, v) >= 0; }
function arr_removeAt(a, idx) {
  if (idx < 0 || idx >= a.length) { return false; }
  for (var i = idx; i < a.length - 1; i = i + 1) { a[i] = a[i + 1]; }
  delete a[a.length - 1];
  a.length = a.length - 1;
  return true;
}
function arr_remove(a, v) {
  var i = arr_indexOf(a, v);
  if (i < 0) { return false; }
  return arr_removeAt(a, i);
}
function arr_reverse(a) {
  var i = 0;
  var j = a.length - 1;
  while (i < j) {
    var tmp = a[i];
    a[i] = a[j];
    a[j] = tmp;
    i = i + 1;
    j = j - 1;
  }
  return a;
}
function arr_equals(a, b) {
  if (a.length !== b.length) { return false; }
  for (var i = 0; i < a.length; i = i + 1) {
    if (a[i] !== b[i]) { return false; }
  }
  return true;
}

// ---------- llist: singly-linked list ---------------------------------
function ll_new() { return { head: null, tail: null, size: 0 }; }
function ll_add(l, v) {
  var node = { value: v, next: null };
  if (l.head === null) { l.head = node; }
  else { l.tail.next = node; }
  l.tail = node;
  l.size = l.size + 1;
  return true;
}
function ll_addFirst(l, v) {
  var node = { value: v, next: l.head };
  l.head = node;
  if (l.tail === null) { l.tail = node; }
  l.size = l.size + 1;
  return true;
}
function ll_get(l, idx) {
  if (idx < 0 || idx >= l.size) { return undefined; }
  var cur = l.head;
  for (var i = 0; i < idx; i = i + 1) { cur = cur.next; }
  return cur.value;
}
function ll_indexOf(l, v) {
  var cur = l.head;
  for (var i = 0; i < l.size; i = i + 1) {
    if (cur.value === v) { return i; }
    cur = cur.next;
  }
  return -1;
}
function ll_removeFirst(l) {
  if (l.head === null) { return undefined; }
  var v = l.head.value;
  l.head = l.head.next;
  if (l.head === null) { l.tail = null; }
  l.size = l.size - 1;
  return v;
}
function ll_toArray(l) {
  var a = arr_new();
  var cur = l.head;
  while (cur !== null) {
    arr_push(a, cur.value);
    cur = cur.next;
  }
  return a;
}

// ---------- stack (llist-backed, LIFO at the head) ---------------------
function st_new() { return { list: ll_new() }; }
function st_push(s, v) { return ll_addFirst(s.list, v); }
function st_pop(s) { return ll_removeFirst(s.list); }
function st_peek(s) {
  if (s.list.head === null) { return undefined; }
  return s.list.head.value;
}
function st_size(s) { return s.list.size; }
function st_isEmpty(s) { return s.list.size === 0; }

// ---------- queue (llist-backed, FIFO) ---------------------------------
function q_new() { return { list: ll_new() }; }
function q_enqueue(q, v) { return ll_add(q.list, v); }
function q_dequeue(q) { return ll_removeFirst(q.list); }
function q_peek(q) {
  if (q.list.head === null) { return undefined; }
  return q.list.head.value;
}
function q_size(q) { return q.list.size; }
function q_isEmpty(q) { return q.list.size === 0; }

// ---------- dict: string/number-keyed table ----------------------------
function d_new() { return { table: {}, keys: arr_new(), size: 0 }; }
function d_set(d, k, v) {
  if (d.table[k] === undefined) {
    arr_push(d.keys, k);
    d.size = d.size + 1;
  }
  d.table[k] = { value: v };
  return v;
}
function d_get(d, k) {
  var slot = d.table[k];
  if (slot === undefined) { return undefined; }
  return slot.value;
}
function d_contains(d, k) { return d.table[k] !== undefined; }
function d_remove(d, k) {
  if (d.table[k] === undefined) { return false; }
  delete d.table[k];
  arr_remove(d.keys, k);
  d.size = d.size - 1;
  return true;
}
function d_size(d) { return d.size; }

// ---------- mdict: dictionary of value arrays ---------------------------
function md_new() { return { dict: d_new() }; }
function md_add(m, k, v) {
  var vals = d_get(m.dict, k);
  if (vals === undefined) {
    vals = arr_new();
    d_set(m.dict, k, vals);
  }
  arr_push(vals, v);
  return true;
}
function md_get(m, k) {
  var vals = d_get(m.dict, k);
  if (vals === undefined) { return arr_new(); }
  return vals;
}
function md_remove(m, k, v) {
  var vals = d_get(m.dict, k);
  if (vals === undefined) { return false; }
  var ok = arr_remove(vals, v);
  if (ok && vals.length === 0) { d_remove(m.dict, k); }
  return ok;
}
function md_count(m, k) { return md_get(m, k).length; }

// ---------- set (dict-backed) -------------------------------------------
function set_new() { return { dict: d_new() }; }
function set_add(s, v) {
  if (d_contains(s.dict, v)) { return false; }
  d_set(s.dict, v, v);
  return true;
}
function set_contains(s, v) { return d_contains(s.dict, v); }
function set_remove(s, v) { return d_remove(s.dict, v); }
function set_size(s) { return d_size(s.dict); }
function set_union(s, t) {
  for (var i = 0; i < t.dict.keys.length; i = i + 1) {
    set_add(s, d_get(t.dict, t.dict.keys[i]));
  }
  return s;
}

// ---------- bag: multiset with counts ------------------------------------
function bag_new() { return { dict: d_new(), total: 0 }; }
function bag_add(b, v) {
  var c = d_get(b.dict, v);
  if (c === undefined) { c = 0; }
  d_set(b.dict, v, c + 1);
  b.total = b.total + 1;
  return true;
}
function bag_count(b, v) {
  var c = d_get(b.dict, v);
  if (c === undefined) { return 0; }
  return c;
}
function bag_remove(b, v) {
  var c = d_get(b.dict, v);
  if (c === undefined) { return false; }
  if (c === 1) { d_remove(b.dict, v); }
  else { d_set(b.dict, v, c - 1); }
  b.total = b.total - 1;
  return true;
}
function bag_size(b) { return b.total; }

// ---------- bst: binary search tree over numbers --------------------------
function bst_new() { return { root: null, size: 0 }; }
function bst_insert(t, k) {
  var node = { key: k, left: null, right: null };
  if (t.root === null) {
    t.root = node;
    t.size = t.size + 1;
    return true;
  }
  var cur = t.root;
  while (true) {
    if (k === cur.key) { return false; }
    if (k < cur.key) {
      if (cur.left === null) { cur.left = node; t.size = t.size + 1; return true; }
      cur = cur.left;
    } else {
      if (cur.right === null) { cur.right = node; t.size = t.size + 1; return true; }
      cur = cur.right;
    }
  }
}
function bst_contains(t, k) {
  var cur = t.root;
  while (cur !== null) {
    if (k === cur.key) { return true; }
    if (k < cur.key) { cur = cur.left; } else { cur = cur.right; }
  }
  return false;
}
function bst_min(t) {
  if (t.root === null) { return undefined; }
  var cur = t.root;
  while (cur.left !== null) { cur = cur.left; }
  return cur.key;
}
function bst_max(t) {
  if (t.root === null) { return undefined; }
  var cur = t.root;
  while (cur.right !== null) { cur = cur.right; }
  return cur.key;
}

// ---------- heap: binary min-heap on an array ------------------------------
function h_new() { return { data: arr_new() }; }
function h_size(h) { return h.data.length; }
function h_push(h, v) {
  arr_push(h.data, v);
  var i = h.data.length - 1;
  while (i > 0) {
    var parent = 0;
    if (i % 2 === 0) { parent = (i - 2) / 2; } else { parent = (i - 1) / 2; }
    if (h.data[parent] <= h.data[i]) { return true; }
    var tmp = h.data[parent];
    h.data[parent] = h.data[i];
    h.data[i] = tmp;
    i = parent;
  }
  return true;
}
function h_peek(h) {
  if (h.data.length === 0) { return undefined; }
  return h.data[0];
}
function h_pop(h) {
  if (h.data.length === 0) { return undefined; }
  var top = h.data[0];
  var last = arr_pop(h.data);
  if (h.data.length === 0) { return top; }
  h.data[0] = last;
  var i = 0;
  while (true) {
    var l = 2 * i + 1;
    var r = 2 * i + 2;
    var smallest = i;
    if (l < h.data.length && h.data[l] < h.data[smallest]) { smallest = l; }
    if (r < h.data.length && h.data[r] < h.data[smallest]) { smallest = r; }
    if (smallest === i) { return top; }
    var tmp = h.data[smallest];
    h.data[smallest] = h.data[i];
    h.data[i] = tmp;
    i = smallest;
  }
}

// ---------- pqueue: priority queue over the heap ----------------------------
function pq_new() { return { heap: h_new(), vals: md_new() }; }
function pq_enqueue(p, prio, v) {
  // The heap orders priorities; a multi-dict maps each priority to its
  // values (FIFO within one priority).
  h_push(p.heap, prio);
  md_add(p.vals, prio, v);
  return true;
}
function pq_dequeue(p) {
  if (h_size(p.heap) === 0) { return undefined; }
  var prio = h_pop(p.heap);
  var vals = md_get(p.vals, prio);
  var v = vals[0];
  md_remove(p.vals, prio, v);
  return v;
}
function pq_size(p) { return h_size(p.heap); }
)mjs";

/// The two seeded defects (kept textually minimal so the diff against the
/// healthy library is exactly the bug):
///  1. ll_indexOf iterates `i <= l.size`, walking past the last node and
///     dereferencing null.
///  2. h_pop compares the *left* child when selecting the right one,
///     breaking the heap property (wrong minimum surfaces).
std::string makeBuggyLibrary() {
  std::string S(Library);
  // Bug 1: off-by-one in ll_indexOf.
  std::string::size_type P =
      S.find("for (var i = 0; i < l.size; i = i + 1) {\n    if (cur.value === v) { return i; }");
  if (P != std::string::npos)
    S.replace(P, std::string("for (var i = 0; i < l.size;").size(),
              "for (var i = 0; i <= l.size;");
  // Bug 2: wrong child comparison in h_pop's sift-down.
  std::string Orig =
      "if (r < h.data.length && h.data[r] < h.data[smallest]) { smallest = r; }";
  std::string Bugged =
      "if (r < h.data.length && h.data[l] < h.data[smallest]) { smallest = r; }";
  P = S.find(Orig);
  if (P != std::string::npos)
    S.replace(P, Orig.size(), Bugged);
  return S;
}

} // namespace

std::string_view gillian::targets::bucketsLibrary() { return Library; }

std::string_view gillian::targets::bucketsBuggyLibrary() {
  static const std::string Buggy = makeBuggyLibrary();
  return Buggy;
}
