//===- tests/gil/expr_test.cpp --------------------------------------------===//

#include "gil/expr.h"

#include <gtest/gtest.h>

#include <map>

using namespace gillian;

TEST(Expr, FactoriesAndAccessors) {
  Expr E = Expr::add(Expr::pvar("x"), Expr::intE(1));
  ASSERT_EQ(E.kind(), ExprKind::BinOp);
  EXPECT_EQ(E.binOpKind(), BinOpKind::Add);
  EXPECT_EQ(E.child(0).varName().str(), "x");
  EXPECT_EQ(E.child(1).litValue().asInt(), 1);
}

TEST(Expr, StructuralEqualityAndHash) {
  Expr A = Expr::add(Expr::lvar("#x"), Expr::intE(1));
  Expr B = Expr::add(Expr::lvar("#x"), Expr::intE(1));
  Expr C = Expr::add(Expr::lvar("#x"), Expr::intE(2));
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_NE(A, C);
  EXPECT_NE(Expr::pvar("x"), Expr::lvar("x")) << "pvar and lvar differ";
}

TEST(Expr, ToStringRendering) {
  Expr E = Expr::andE(Expr::lt(Expr::pvar("x"), Expr::intE(3)),
                      Expr::notE(Expr::pvar("b")));
  EXPECT_EQ(E.toString(), "((x < 3) && (! b))");
  EXPECT_EQ(Expr::unOp(UnOpKind::TypeOf, Expr::lvar("#v")).toString(),
            "typeof(#v)");
  EXPECT_EQ(Expr::binOp(BinOpKind::ListNth, Expr::pvar("l"), Expr::intE(0))
                .toString(),
            "l_nth(l, 0)");
  EXPECT_EQ(Expr::list({Expr::intE(1), Expr::pvar("y")}).toString(),
            "[1, y]");
}

TEST(Expr, CollectVariables) {
  Expr E = Expr::add(Expr::lvar("#a"),
                     Expr::binOp(BinOpKind::Mul, Expr::pvar("x"),
                                 Expr::lvar("#b")));
  std::set<InternedString> LVars, PVars;
  E.collectLVars(LVars);
  E.collectPVars(PVars);
  EXPECT_EQ(LVars.size(), 2u);
  EXPECT_EQ(PVars.size(), 1u);
  EXPECT_TRUE(E.hasLVars());
  EXPECT_FALSE(Expr::intE(1).hasLVars());
}

TEST(Expr, SubstPVarsReplacesAndShares) {
  Expr E = Expr::add(Expr::pvar("x"), Expr::intE(1));
  Expr S = E.substPVars([](InternedString) { return Expr::lvar("#v"); });
  EXPECT_EQ(S.toString(), "(#v + 1)");
  // Unchanged subtrees are shared, not rebuilt.
  Expr NoP = Expr::add(Expr::lvar("#a"), Expr::intE(2));
  Expr S2 = NoP.substPVars([](InternedString) { return Expr::intE(0); });
  EXPECT_EQ(S2, NoP);
}

TEST(Expr, SubstPVarsReportsUnbound) {
  Expr E = Expr::add(Expr::pvar("x"), Expr::pvar("y"));
  Expr S = E.substPVars([](InternedString X) {
    return X.str() == "x" ? Expr::intE(1) : Expr();
  });
  EXPECT_TRUE(S.isNull()) << "unbound variable must surface as null";
}

TEST(Expr, SubstLVarsKeepsUnmapped) {
  Expr E = Expr::add(Expr::lvar("#a"), Expr::lvar("#b"));
  Expr S = E.substLVars([](InternedString X) {
    return X.str() == "#a" ? Expr::intE(5) : Expr();
  });
  EXPECT_EQ(S.toString(), "(5 + #b)");
}

TEST(Expr, EvalConcreteWithStore) {
  Value X = Value::intV(4);
  Expr E = Expr::add(Expr::pvar("x"), Expr::intE(1));
  Result<Value> R = E.evalConcrete([&](InternedString N) {
    return N.str() == "x" ? &X : nullptr;
  });
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->asInt(), 5);
}

TEST(Expr, EvalConcreteShortCircuits) {
  // (false && 1/0-style-fault) must evaluate to false, matching the
  // simplifier's And(false, e) -> false rule.
  Expr Fault = Expr::binOp(BinOpKind::Div, Expr::intE(1), Expr::intE(0));
  Expr E = Expr::andE(Expr::boolE(false),
                      Expr::eq(Fault, Expr::intE(0)));
  Result<Value> R = E.evalClosed();
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R->asBool());
  // But (fault && false) faults.
  Expr E2 = Expr::andE(Expr::eq(Fault, Expr::intE(0)), Expr::boolE(false));
  EXPECT_FALSE(E2.evalClosed().ok());
}

TEST(Expr, EvalConcreteRejectsLVars) {
  EXPECT_FALSE(Expr::lvar("#x").evalClosed().ok());
}

TEST(Expr, EvalListBuildsValue) {
  Expr E = Expr::list({Expr::intE(1), Expr::strE("a")});
  Result<Value> R = E.evalClosed();
  ASSERT_TRUE(R.ok());
  ASSERT_TRUE(R->isList());
  EXPECT_EQ(R->asList()[1].asStr().str(), "a");
}

TEST(Expr, OrderingUsableAsMapKey) {
  std::map<Expr, int, ExprOrdering> M;
  M[Expr::lvar("#a")] = 1;
  M[Expr::lvar("#b")] = 2;
  M[Expr::add(Expr::lvar("#a"), Expr::intE(1))] = 3;
  M[Expr::lvar("#a")] = 10; // overwrite, not insert
  EXPECT_EQ(M.size(), 3u);
  EXPECT_EQ(M[Expr::lvar("#a")], 10);
}

TEST(Expr, CopiesAreShallow) {
  Expr A = Expr::add(Expr::lvar("#x"), Expr::intE(1));
  Expr B = A;
  EXPECT_EQ(A, B);
  // Identity shortcut: equal via pointer, not deep walk (observable via
  // hash equality plus the fact that Expr is immutable).
  EXPECT_EQ(A.hash(), B.hash());
}
