//===- solver/simplifier.h - Algebraic simplification ----------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first-order simplifier the paper refers to in §2.3 ("Gillian's
/// first-order solver applies a number of algebraic identities to simplify
/// the resulting expression"). It constant-folds through the *same*
/// concrete operator semantics the interpreter uses, and applies algebraic
/// identities that are sound for GIL's dynamically typed values (identities
/// that depend on types, such as e*0 = 0, fire only when the operand type
/// is statically known).
///
/// The simplifier is one of the engine improvements the paper credits for
/// Gillian-JS being ~2x faster than JaVerT 2.0; it can be disabled through
/// EngineOptions to reconstruct the baseline (see bench/ablation).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_SIMPLIFIER_H
#define GILLIAN_SOLVER_SIMPLIFIER_H

#include "gil/expr.h"
#include "solver/type_infer.h"

namespace gillian {

/// Simplifies \p E bottom-up. Idempotent; never changes the meaning of the
/// expression (including its error behaviour being preserved *or refined*:
/// an expression that would fault concretely is never simplified into one
/// that succeeds with a different value, though a faulting expression may
/// remain unsimplified).
///
/// \p Env supplies logical-variable types (harvested from the path
/// condition); type-guarded identities such as (#p + 8) + 8 -> #p + 16
/// only fire when the operand types are known.
Expr simplify(const Expr &E, const TypeEnv *Env = nullptr);

/// simplify() with a process-wide memo cache keyed by (environment hash,
/// expression). The cache makes repeated path-condition simplification
/// cheap; it can be bypassed (for the JaVerT-2.0-style ablation) by
/// calling simplify().
Expr simplifyCached(const Expr &E, const TypeEnv *Env = nullptr);

/// Number of hits/misses of the simplifyCached memo, and the wall-time
/// spent computing misses (for bench reporting).
struct SimplifyCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t MissNs = 0; ///< steady-clock ns spent simplifying on misses
};
SimplifyCacheStats simplifyCacheStats();
void resetSimplifyCache();

} // namespace gillian

#endif // GILLIAN_SOLVER_SIMPLIFIER_H
