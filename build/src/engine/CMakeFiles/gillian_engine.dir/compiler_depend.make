# Empty compiler generated dependencies file for gillian_engine.
# This may be replaced when dependencies are built.
