file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_scaling.dir/bench_engine_scaling.cpp.o"
  "CMakeFiles/bench_engine_scaling.dir/bench_engine_scaling.cpp.o.d"
  "bench_engine_scaling"
  "bench_engine_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
