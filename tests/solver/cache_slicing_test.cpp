//===- tests/solver/cache_slicing_test.cpp --------------------------------===//
//
// Property tests for the canonical (order-insensitive) path-condition form
// and the solver's independence-slicing cache layer, plus the solver-layer
// ablation: the legacy JaVerT 2.0 configuration and the default must agree
// on every verdict of a shared query corpus while the default banks
// strictly more cache hits.
//
//===----------------------------------------------------------------------===//

#include "solver/solver.h"

#include "gil/parser.h"
#include "solver/simplifier.h"
#include "solver/z3_backend.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace gillian;

namespace {

Expr parse(const char *S) {
  Result<Expr> R = parseGilExpr(S);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return simplify(*R);
}

PathCondition pcOf(const std::vector<Expr> &Conjuncts) {
  PathCondition P;
  for (const Expr &E : Conjuncts)
    P.add(E);
  return P;
}

/// Fisher-Yates with the repo's deterministic splitmix64 RNG.
void shuffle(std::vector<Expr> &V, Rng &R) {
  for (size_t I = V.size(); I > 1; --I)
    std::swap(V[I - 1], V[R.below(I)]);
}

} // namespace

TEST(CanonicalForm, PermutedInsertionOrdersCompareEqual) {
  std::vector<Expr> Conjuncts;
  for (int I = 0; I < 12; ++I) {
    std::string V = "#p" + std::to_string(I);
    Conjuncts.push_back(parse(("typeof(" + V + ") == ^Int").c_str()));
    Conjuncts.push_back(parse((V + " < " + std::to_string(I + 50)).c_str()));
  }
  PathCondition Base = pcOf(Conjuncts);
  Rng R(0xC0FFEEull);
  for (int Round = 0; Round < 32; ++Round) {
    shuffle(Conjuncts, R);
    PathCondition Permuted = pcOf(Conjuncts);
    ASSERT_EQ(Base, Permuted) << "round " << Round;
    ASSERT_EQ(Base.hash(), Permuted.hash()) << "round " << Round;
    ASSERT_TRUE(Base.contains(Permuted) && Permuted.contains(Base));
  }
}

TEST(CanonicalForm, PermutedInsertionOrdersAreCacheHits) {
  std::vector<Expr> Conjuncts = {
      parse("typeof(#x) == ^Int"), parse("typeof(#y) == ^Int"),
      parse("0 <= #x"),            parse("#x < 32"),
      parse("#y == 5"),            parse("!(#x == 7)"),
  };
  Solver S;
  SatResult Expected = S.checkSat(pcOf(Conjuncts));
  Rng R(0xDECAFull);
  for (int Round = 0; Round < 16; ++Round) {
    shuffle(Conjuncts, R);
    uint64_t Hits = S.stats().CacheHits;
    EXPECT_EQ(S.checkSat(pcOf(Conjuncts)), Expected);
    EXPECT_EQ(S.stats().CacheHits, Hits + 1)
        << "permutation " << Round << " must hit the canonical cache";
  }
  EXPECT_EQ(S.stats().Queries, 17u);
}

TEST(Slicing, PartitionsByVariableConnectedComponents) {
  PathCondition P;
  P.add(parse("typeof(#a) == ^Int"));
  P.add(parse("#a < #b"));              // links #a and #b
  P.add(parse("typeof(#c) == ^Int"));   // separate component
  P.add(parse("#c == 9"));
  P.add(parse("typeof(#d) == ^Bool"));  // third component
  auto Groups = sliceConjunctsByVars(P);
  ASSERT_EQ(Groups.size(), 3u);
  size_t Total = 0;
  for (const auto &G : Groups) {
    Total += G.size();
    // Each group's conjuncts only mention that group's variables: check
    // pairwise disjointness of the variable sets.
    std::set<InternedString> Vars;
    for (const Expr &E : G)
      E.collectLVars(Vars);
    for (const auto &H : Groups) {
      if (&H == &G)
        continue;
      std::set<InternedString> Other;
      for (const Expr &E : H)
        E.collectLVars(Other);
      for (InternedString V : Vars)
        EXPECT_EQ(Other.count(V), 0u) << "slices must be variable-disjoint";
    }
  }
  EXPECT_EQ(Total, P.size());
}

TEST(Slicing, GroundConjunctsPoolIntoOneSlice) {
  // Opaque variable-free conjuncts (they survive simplification only when
  // not foldable) all land in one ground group.
  PathCondition P;
  P.add(Expr::eq(Expr::typeOf(Expr::lit(Value::symV("$a"))),
                 Expr::lit(Value::typeV(GilType::Sym))));
  P.add(Expr::eq(Expr::typeOf(Expr::lit(Value::symV("$b"))),
                 Expr::lit(Value::typeV(GilType::Sym))));
  P.add(parse("typeof(#x) == ^Int"));
  auto Groups = sliceConjunctsByVars(P);
  EXPECT_EQ(Groups.size(), 2u) << "two ground conjuncts pool together";
}

TEST(Slicing, SupersetQueryOnlySolvesTheNewSlice) {
  // The common shape along a symbolic path: each step conjoins constraints
  // on fresh variables. With slicing, step k re-uses the k-1 cached slices
  // and only solves the new one.
  Solver S;
  PathCondition P;
  for (int I = 0; I < 6; ++I) {
    std::string V = "#v" + std::to_string(I);
    P.add(parse(("typeof(" + V + ") == ^Int").c_str()));
    P.add(parse(("0 <= " + V).c_str()));
    SatResult R = S.checkSat(P);
    EXPECT_EQ(R, SatResult::Sat);
    if (I > 0) {
      // All but the freshest slice must come from the cache.
      const SolverStats &St = S.stats();
      EXPECT_GE(St.SliceCacheHits, static_cast<uint64_t>(I))
          << "step " << I << " should reuse previously decided slices";
    }
  }
  // A full repeat of the final query is a single whole-key hit.
  uint64_t Hits = S.stats().CacheHits;
  EXPECT_EQ(S.checkSat(P), SatResult::Sat);
  EXPECT_EQ(S.stats().CacheHits, Hits + 1);
}

TEST(Slicing, UnsatSliceRefutesTheWholeCondition) {
  Solver S;
  PathCondition P;
  P.add(parse("typeof(#a) == ^Int"));
  P.add(parse("0 <= #a"));
  P.add(parse("#b == 1"));
  P.add(parse("#b == 2")); // this slice is unsat
  P.add(parse("typeof(#c) == ^Str"));
  EXPECT_EQ(S.checkSat(P), SatResult::Unsat);
  EXPECT_GE(S.stats().SyntacticUnsat, 1u);
  EXPECT_EQ(S.stats().Z3Calls, 0u)
      << "slice-level syntactic refutation must not consult Z3";
}

TEST(Slicing, DisabledSlicingStillDecidesIdentically) {
  SolverOptions NoSlice;
  NoSlice.UseSlicing = false;
  Solver A, B(NoSlice);
  std::vector<PathCondition> Corpus;
  {
    PathCondition P;
    P.add(parse("typeof(#a) == ^Int"));
    P.add(parse("#a == 3"));
    P.add(parse("typeof(#b) == ^Int"));
    P.add(parse("#b == 4"));
    Corpus.push_back(P);
    P.add(parse("#a == #b")); // joins the slices; unsat
    Corpus.push_back(P);
  }
  for (const PathCondition &P : Corpus)
    EXPECT_EQ(A.checkSat(P), B.checkSat(P));
  EXPECT_GT(A.stats().Slices, 0u);
  EXPECT_EQ(B.stats().Slices, 0u);
}

//===----------------------------------------------------------------------===//
// Solver-layer ablation: shared corpus, identical verdicts, more hits.
//===----------------------------------------------------------------------===//

namespace {

/// A corpus shaped like a symbolic run: repeated queries, permuted branch
/// orders, and growing supersets over fresh variables.
std::vector<PathCondition> sharedCorpus() {
  std::vector<PathCondition> Corpus;

  // Growing path over independent variables (the superset shape).
  PathCondition Grow;
  for (int I = 0; I < 5; ++I) {
    std::string V = "#g" + std::to_string(I);
    Grow.add(parse(("typeof(" + V + ") == ^Int").c_str()));
    Grow.add(parse((V + " < 100").c_str()));
    Corpus.push_back(Grow);
  }

  // The same constraint set in two branch orders.
  std::vector<Expr> Set = {
      parse("typeof(#x) == ^Int"), parse("0 <= #x"), parse("#x < 10"),
      parse("typeof(#y) == ^Int"), parse("#y == #x + 1")};
  Corpus.push_back(pcOf(Set));
  std::reverse(Set.begin(), Set.end());
  Corpus.push_back(pcOf(Set));

  // Unsat variants (decided syntactically or by Z3).
  {
    PathCondition P = pcOf(Set);
    P.add(parse("#x == 11"));
    Corpus.push_back(P);
    Corpus.push_back(P); // exact repeat
  }

  // Independent unsat slice inside an otherwise-sat condition.
  {
    PathCondition P;
    P.add(parse("typeof(#p) == ^Int"));
    P.add(parse("#p == 1"));
    P.add(parse("#q == 1"));
    P.add(parse("#q == 2"));
    Corpus.push_back(P);
  }
  return Corpus;
}

} // namespace

TEST(SolverAblation, LegacyAndDefaultAgreeWhileDefaultCachesMore) {
  Solver Default;
  Solver Legacy(SolverOptions::legacyJaVerT2());
  std::vector<PathCondition> Corpus = sharedCorpus();
  // Replay the corpus twice, as suite re-runs do.
  for (int Round = 0; Round < 2; ++Round)
    for (const PathCondition &P : Corpus) {
      SatResult RD = Default.checkSat(P);
      SatResult RL = Legacy.checkSat(P);
      EXPECT_EQ(RD, RL) << "ablation must not change verdicts on: "
                        << P.toString();
    }
  uint64_t DefaultHits =
      Default.stats().CacheHits + Default.stats().SliceCacheHits;
  uint64_t LegacyHits =
      Legacy.stats().CacheHits + Legacy.stats().SliceCacheHits;
  EXPECT_GT(DefaultHits, LegacyHits)
      << "the canonical slicing cache must bank strictly more hits";
  EXPECT_EQ(LegacyHits, 0u);
  // No verdict ever came from a cached Unknown: decided counts dominate.
  EXPECT_EQ(Default.stats().Unknown, Legacy.stats().Unknown);
}
