//===- mjs/runtime.h - MJS GIL runtime library ------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MJS runtime: GIL procedures implementing the dynamically-typed
/// corners of the language — truthiness, coercing `+`, `typeof`, and
/// property-key conversion. They are written in *textual GIL* (see
/// runtime.cpp) and linked into every compiled MJS program, mirroring how
/// Gillian-JS compiles the ES5 internal functions to GIL (§4.1).
///
/// The type-dispatch branches inside these procedures fold away statically
/// whenever the engine's path condition determines operand types, so
/// well-typed code pays no branching cost.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_MJS_RUNTIME_H
#define GILLIAN_MJS_RUNTIME_H

#include "gil/prog.h"

namespace gillian::mjs {

/// Textual-GIL source of the runtime (parsed and cached on first use).
std::string_view runtimeSource();

/// Adds the runtime procedures to \p P. Asserts on internal parse errors
/// (the runtime is a compiled-in constant, validated by tests).
void linkRuntime(Prog &P);

} // namespace gillian::mjs

#endif // GILLIAN_MJS_RUNTIME_H
