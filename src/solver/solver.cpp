//===- solver/solver.cpp --------------------------------------------------===//

#include "solver/solver.h"

#include "solver/incremental_session.h"
#include "solver/simplifier.h"
#include "solver/z3_backend.h"

#include <chrono>
#include <cstdio>

using namespace gillian;

namespace {

constexpr auto Relaxed = std::memory_order_relaxed;

/// Accumulates steady-clock elapsed nanoseconds into a stats slot.
/// The slot is a relaxed atomic so concurrent workers never lose time.
class ScopedTimer {
public:
  explicit ScopedTimer(std::atomic<uint64_t> &Slot)
      : Slot(Slot), T0(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    Slot.fetch_add(static_cast<uint64_t>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - T0)
                           .count()),
                   Relaxed);
  }

private:
  std::atomic<uint64_t> &Slot;
  std::chrono::steady_clock::time_point T0;
};

} // namespace

// Walks every counter of SolverStats once, so the copy/sum/delta
// operations cannot drift from the field list.
#define GILLIAN_SOLVER_STATS_FIELDS(APPLY)                                     \
  APPLY(Queries)                                                               \
  APPLY(TrivialAnswers)                                                        \
  APPLY(CacheLookups)                                                          \
  APPLY(CacheHits)                                                             \
  APPLY(SliceCacheLookups)                                                     \
  APPLY(SliceCacheHits)                                                        \
  APPLY(SlicedQueries)                                                         \
  APPLY(Slices)                                                                \
  APPLY(SyntacticUnsat)                                                        \
  APPLY(SyntacticSat)                                                          \
  APPLY(Z3Calls)                                                               \
  APPLY(IncQueries)                                                            \
  APPLY(IncExtends)                                                            \
  APPLY(IncResets)                                                             \
  APPLY(IncPoppedFrames)                                                       \
  APPLY(IncReusedConjuncts)                                                    \
  APPLY(IncPrefixDepth)                                                        \
  APPLY(EncodeMemoHits)                                                        \
  APPLY(EncodeMemoMisses)                                                      \
  APPLY(Sat)                                                                   \
  APPLY(Unsat)                                                                 \
  APPLY(Unknown)                                                               \
  APPLY(ModelsProposed)                                                        \
  APPLY(ModelsVerified)                                                        \
  APPLY(SliceNs)                                                               \
  APPLY(CanonNs)                                                               \
  APPLY(SyntacticNs)                                                           \
  APPLY(Z3Ns)                                                                  \
  APPLY(TotalNs)

SolverStats &SolverStats::operator=(const SolverStats &O) {
#define GILLIAN_COPY(F) F.store(O.F.load(Relaxed), Relaxed);
  GILLIAN_SOLVER_STATS_FIELDS(GILLIAN_COPY)
#undef GILLIAN_COPY
  return *this;
}

SolverStats &SolverStats::operator+=(const SolverStats &O) {
#define GILLIAN_ADD(F) F.fetch_add(O.F.load(Relaxed), Relaxed);
  GILLIAN_SOLVER_STATS_FIELDS(GILLIAN_ADD)
#undef GILLIAN_ADD
  return *this;
}

SolverStats SolverStats::operator-(const SolverStats &O) const {
  SolverStats D;
#define GILLIAN_SUB(F) D.F.store(F.load(Relaxed) - O.F.load(Relaxed), Relaxed);
  GILLIAN_SOLVER_STATS_FIELDS(GILLIAN_SUB)
#undef GILLIAN_SUB
  return D;
}

std::string gillian::solverStatsJson(const SolverStats &S) {
  char Buf[2048];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"queries\":%llu,\"trivial\":%llu,\"cache_lookups\":%llu,"
      "\"cache_hits\":%llu,\"slice_cache_lookups\":%llu,"
      "\"slice_cache_hits\":%llu,\"cache_hit_rate\":%.4f,"
      "\"sliced_queries\":%llu,\"slices\":%llu,\"syntactic_unsat\":%llu,"
      "\"syntactic_sat\":%llu,\"z3_calls\":%llu,"
      "\"inc_queries\":%llu,\"inc_extends\":%llu,\"inc_resets\":%llu,"
      "\"inc_popped_frames\":%llu,\"inc_reused_conjuncts\":%llu,"
      "\"inc_prefix_depth\":%llu,\"inc_session_hit_rate\":%.4f,"
      "\"inc_mean_prefix_depth\":%.2f,"
      "\"encode_memo_hits\":%llu,\"encode_memo_misses\":%llu,"
      "\"sat\":%llu,"
      "\"unsat\":%llu,\"unknown\":%llu,\"slice_ns\":%llu,"
      "\"canon_ns\":%llu,\"syntactic_ns\":%llu,\"z3_ns\":%llu,"
      "\"total_ns\":%llu}",
      static_cast<unsigned long long>(S.Queries),
      static_cast<unsigned long long>(S.TrivialAnswers),
      static_cast<unsigned long long>(S.CacheLookups),
      static_cast<unsigned long long>(S.CacheHits),
      static_cast<unsigned long long>(S.SliceCacheLookups),
      static_cast<unsigned long long>(S.SliceCacheHits), S.cacheHitRate(),
      static_cast<unsigned long long>(S.SlicedQueries),
      static_cast<unsigned long long>(S.Slices),
      static_cast<unsigned long long>(S.SyntacticUnsat),
      static_cast<unsigned long long>(S.SyntacticSat),
      static_cast<unsigned long long>(S.Z3Calls),
      static_cast<unsigned long long>(S.IncQueries),
      static_cast<unsigned long long>(S.IncExtends),
      static_cast<unsigned long long>(S.IncResets),
      static_cast<unsigned long long>(S.IncPoppedFrames),
      static_cast<unsigned long long>(S.IncReusedConjuncts),
      static_cast<unsigned long long>(S.IncPrefixDepth), S.sessionHitRate(),
      S.meanPrefixDepth(),
      static_cast<unsigned long long>(S.EncodeMemoHits),
      static_cast<unsigned long long>(S.EncodeMemoMisses),
      static_cast<unsigned long long>(S.Sat),
      static_cast<unsigned long long>(S.Unsat),
      static_cast<unsigned long long>(S.Unknown),
      static_cast<unsigned long long>(S.SliceNs),
      static_cast<unsigned long long>(S.CanonNs),
      static_cast<unsigned long long>(S.SyntacticNs),
      static_cast<unsigned long long>(S.Z3Ns),
      static_cast<unsigned long long>(S.TotalNs));
  return Buf;
}

SatResult Solver::solveLayers(const PathCondition &PC) {
  SatResult R = SatResult::Unknown;
  if (Opts.UseSyntactic) {
    ScopedTimer T(Stats.SyntacticNs);
    R = checkSatSyntactic(PC);
    if (R == SatResult::Unsat)
      ++Stats.SyntacticUnsat;
    // SAT certification without SMT: propose a candidate model from the
    // syntactic analysis and verify it by evaluating every conjunct —
    // sound by construction, and it short-circuits the Z3 round-trip on
    // the common simple path conditions symbolic execution produces.
    if (R == SatResult::Unknown) {
      if (std::optional<Model> M = proposeModelSyntactic(PC)) {
        ++Stats.ModelsProposed;
        if (M->satisfies(PC)) {
          ++Stats.ModelsVerified;
          ++Stats.SyntacticSat;
          R = SatResult::Sat;
        }
      }
    }
  }
  if (R == SatResult::Unknown && Opts.UseZ3 && z3Available()) {
    ScopedTimer T(Stats.Z3Ns);
    ++Stats.Z3Calls;
    TypeEnv Types;
    if (!inferTypes(PC.conjuncts(), Types)) {
      R = SatResult::Unsat;
    } else if (Opts.UseIncremental) {
      // Layer 2: the thread's incremental session pool pushes only the
      // delta against an already-asserted path-condition prefix.
      R = IncrementalSessionPool::forThread().checkSat(
          PC, Types, Opts.IncrementalResetThreshold, Stats);
    } else {
      R = checkSatZ3(PC, Types, /*WantModel=*/false).Verdict;
    }
  }
  return R;
}

void Solver::resetCache() {
  Cache->clear();
  // Cold also means the upstream simplifier memo and every thread's
  // incremental sessions + encoding memos; other threads' sessions drop
  // lazily (Z3 handles are thread-owned), this thread's immediately.
  resetSimplifyCache();
  IncrementalSessionPool::invalidateAll();
  IncrementalSessionPool::forThread().reset();
}

SatResult Solver::solveSlice(const PathCondition &Slice) {
  if (Opts.UseCache) {
    ++Stats.SliceCacheLookups;
    if (std::optional<SatResult> Hit = Cache->lookup(Slice)) {
      ++Stats.SliceCacheHits;
      return *Hit;
    }
  }
  SatResult R = solveLayers(Slice);
  if (Opts.UseCache)
    Cache->insert(Slice, R); // insert() drops Unknown
  return R;
}

SatResult Solver::checkSatSliced(const PathCondition &PC) {
  std::vector<std::vector<Expr>> Groups;
  {
    ScopedTimer T(Stats.SliceNs);
    Groups = sliceConjunctsByVars(PC);
  }
  if (Groups.size() <= 1)
    return solveLayers(PC); // one component: slicing buys nothing
  ++Stats.SlicedQueries;
  Stats.Slices += Groups.size();

  std::vector<PathCondition> Slices;
  {
    ScopedTimer T(Stats.CanonNs);
    Slices.reserve(Groups.size());
    for (std::vector<Expr> &G : Groups)
      Slices.push_back(PathCondition::fromSortedConjuncts(std::move(G)));
  }

  // Slices are variable-disjoint: any Unsat slice refutes the whole
  // condition, and the condition is Sat only when every slice is.
  bool AllSat = true;
  for (const PathCondition &S : Slices) {
    SatResult R = solveSlice(S);
    if (R == SatResult::Unsat)
      return SatResult::Unsat;
    if (R != SatResult::Sat)
      AllSat = false;
  }
  return AllSat ? SatResult::Sat : SatResult::Unknown;
}

SatResult Solver::checkSat(const PathCondition &PC) {
  ScopedTimer Total(Stats.TotalNs);
  ++Stats.Queries;
  if (PC.isTriviallyFalse()) {
    ++Stats.TrivialAnswers;
    ++Stats.Unsat;
    return SatResult::Unsat;
  }
  if (PC.empty()) {
    ++Stats.TrivialAnswers;
    ++Stats.Sat;
    return SatResult::Sat;
  }

  if (Opts.UseCache) {
    ++Stats.CacheLookups;
    if (std::optional<SatResult> Hit = Cache->lookup(PC)) {
      ++Stats.CacheHits;
      return *Hit;
    }
  }

  SatResult R = Opts.UseSlicing && PC.size() > 1 ? checkSatSliced(PC)
                                                 : solveLayers(PC);

  switch (R) {
  case SatResult::Sat: ++Stats.Sat; break;
  case SatResult::Unsat: ++Stats.Unsat; break;
  case SatResult::Unknown: ++Stats.Unknown; break;
  }
  // Cache only decided verdicts: a cached Unknown would permanently
  // poison a query that a later attempt (e.g. with Z3 available, or via a
  // verified syntactic model) could decide.
  if (Opts.UseCache)
    Cache->insert(PC, R); // insert() drops Unknown
  return R;
}

std::optional<Model> Solver::verifiedModel(const PathCondition &PC) {
  ScopedTimer Total(Stats.TotalNs);
  if (PC.isTriviallyFalse())
    return std::nullopt;

  // First try the cheap syntactic proposal.
  if (Opts.UseSyntactic) {
    ScopedTimer T(Stats.SyntacticNs);
    if (auto M = proposeModelSyntactic(PC)) {
      ++Stats.ModelsProposed;
      if (M->satisfies(PC)) {
        ++Stats.ModelsVerified;
        return M;
      }
    }
  }
  if (Opts.UseZ3 && z3Available()) {
    ScopedTimer T(Stats.Z3Ns);
    TypeEnv Types;
    if (!inferTypes(PC.conjuncts(), Types))
      return std::nullopt;
    ++Stats.Z3Calls;
    Z3Outcome Out = checkSatZ3(PC, Types, /*WantModel=*/true);
    if (Out.CandidateModel) {
      ++Stats.ModelsProposed;
      if (Out.CandidateModel->satisfies(PC)) {
        ++Stats.ModelsVerified;
        return Out.CandidateModel;
      }
    }
  }
  return std::nullopt;
}
