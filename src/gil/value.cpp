//===- gil/value.cpp ------------------------------------------------------===//

#include "gil/value.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

using namespace gillian;

std::string_view gillian::typeName(GilType T) {
  switch (T) {
  case GilType::Int: return "Int";
  case GilType::Num: return "Num";
  case GilType::Str: return "Str";
  case GilType::Bool: return "Bool";
  case GilType::Sym: return "Sym";
  case GilType::Type: return "Type";
  case GilType::Proc: return "Proc";
  case GilType::List: return "List";
  }
  return "<bad-type>";
}

Value Value::intV(int64_t I) {
  Value V;
  V.Kind = GilType::Int;
  V.Payload.I = I;
  return V;
}

Value Value::numV(double D) {
  Value V;
  V.Kind = GilType::Num;
  V.Payload.D = D;
  return V;
}

Value Value::strV(InternedString S) {
  Value V;
  V.Kind = GilType::Str;
  V.Payload.S = S.id();
  return V;
}

Value Value::strV(std::string_view S) { return strV(InternedString::get(S)); }

Value Value::boolV(bool B) {
  Value V;
  V.Kind = GilType::Bool;
  V.Payload.B = B;
  return V;
}

Value Value::symV(InternedString Name) {
  Value V;
  V.Kind = GilType::Sym;
  V.Payload.S = Name.id();
  return V;
}

Value Value::symV(std::string_view Name) {
  return symV(InternedString::get(Name));
}

Value Value::typeV(GilType T) {
  Value V;
  V.Kind = GilType::Type;
  V.Payload.T = static_cast<uint8_t>(T);
  return V;
}

Value Value::procV(InternedString F) {
  Value V;
  V.Kind = GilType::Proc;
  V.Payload.S = F.id();
  return V;
}

Value Value::procV(std::string_view F) { return procV(InternedString::get(F)); }

Value Value::listV(std::vector<Value> Elems) {
  Value V;
  V.Kind = GilType::List;
  V.Payload.I = 0;
  V.List = std::make_shared<const std::vector<Value>>(std::move(Elems));
  return V;
}

bool gillian::operator==(const Value &A, const Value &B) {
  if (A.Kind != B.Kind)
    return false;
  switch (A.Kind) {
  case GilType::Int: return A.Payload.I == B.Payload.I;
  case GilType::Num:
    // Bitwise identity, not IEEE ==: GIL equality is structural, so
    // NaN == NaN holds and the simplifier's Eq(e,e) -> true rule is sound.
    return std::memcmp(&A.Payload.D, &B.Payload.D, sizeof(double)) == 0;
  case GilType::Bool: return A.Payload.B == B.Payload.B;
  case GilType::Str:
  case GilType::Sym:
  case GilType::Proc: return A.Payload.S == B.Payload.S;
  case GilType::Type: return A.Payload.T == B.Payload.T;
  case GilType::List:
    return A.List == B.List || *A.List == *B.List;
  }
  return false;
}

bool gillian::operator<(const Value &A, const Value &B) {
  if (A.Kind != B.Kind)
    return static_cast<uint8_t>(A.Kind) < static_cast<uint8_t>(B.Kind);
  switch (A.Kind) {
  case GilType::Int: return A.Payload.I < B.Payload.I;
  case GilType::Num: {
    // Total order via bit patterns (consistent with bitwise equality).
    uint64_t X, Y;
    std::memcpy(&X, &A.Payload.D, sizeof(double));
    std::memcpy(&Y, &B.Payload.D, sizeof(double));
    return X < Y;
  }
  case GilType::Bool: return A.Payload.B < B.Payload.B;
  case GilType::Str:
  case GilType::Sym:
  case GilType::Proc: return A.Payload.S < B.Payload.S;
  case GilType::Type: return A.Payload.T < B.Payload.T;
  case GilType::List: {
    const auto &LA = *A.List, &LB = *B.List;
    size_t N = std::min(LA.size(), LB.size());
    for (size_t I = 0; I < N; ++I) {
      if (LA[I] < LB[I])
        return true;
      if (LB[I] < LA[I])
        return false;
    }
    return LA.size() < LB.size();
  }
  }
  return false;
}

size_t Value::hash() const {
  auto Mix = [](size_t H, size_t X) {
    return (H ^ X) * 0x9E3779B97F4A7C15ull + 0x632BE59BD9B4E019ull;
  };
  size_t H = static_cast<size_t>(Kind);
  switch (Kind) {
  case GilType::Int: return Mix(H, std::hash<int64_t>()(Payload.I));
  case GilType::Num: return Mix(H, std::hash<double>()(Payload.D));
  case GilType::Bool: return Mix(H, Payload.B ? 2 : 1);
  case GilType::Str:
  case GilType::Sym:
  case GilType::Proc: return Mix(H, Payload.S);
  case GilType::Type: return Mix(H, Payload.T);
  case GilType::List:
    for (const Value &E : *List)
      H = Mix(H, E.hash());
    return Mix(H, List->size());
  }
  return H;
}

/// Formats a double so it round-trips and stays distinguishable from an
/// integer literal (always contains '.' or an exponent).
static std::string formatNum(double D) {
  if (std::isnan(D))
    return "nan";
  if (std::isinf(D))
    return D > 0 ? "inf" : "-inf";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  std::string S(Buf);
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  // Prefer the shortest representation that round-trips.
  for (int Prec = 1; Prec < 17; ++Prec) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, D);
    if (std::strtod(Buf, nullptr) == D) {
      S = Buf;
      if (S.find('.') == std::string::npos && S.find('e') == std::string::npos)
        S += ".0";
      break;
    }
  }
  return S;
}

static void escapeInto(std::string &Out, std::string_view S) {
  Out.push_back('"');
  for (char C : S) {
    switch (C) {
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    case '\r': Out += "\\r"; break;
    case '\0': Out += "\\0"; break;
    case '\\': Out += "\\\\"; break;
    case '"': Out += "\\\""; break;
    default: Out.push_back(C); break;
    }
  }
  Out.push_back('"');
}

std::string Value::toString() const {
  switch (Kind) {
  case GilType::Int:
    return std::to_string(Payload.I);
  case GilType::Num:
    return formatNum(Payload.D);
  case GilType::Bool:
    return Payload.B ? "true" : "false";
  case GilType::Str: {
    std::string Out;
    escapeInto(Out, asStr().str());
    return Out;
  }
  case GilType::Sym:
    return std::string(asSym().str());
  case GilType::Proc:
    return "&" + std::string(asProc().str());
  case GilType::Type:
    return "^" + std::string(typeName(asType()));
  case GilType::List: {
    std::string Out = "[";
    bool First = true;
    for (const Value &E : *List) {
      if (!First)
        Out += ", ";
      First = false;
      Out += E.toString();
    }
    Out += "]";
    return Out;
  }
  }
  return "<bad-value>";
}
