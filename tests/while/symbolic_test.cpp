//===- tests/while/symbolic_test.cpp --------------------------------------===//
//
// End-to-end symbolic testing of While programs: symbolic inputs,
// assume/assert, bounded verification verdicts, and counter-model-backed
// bug reports (the §1 user story).
//
//===----------------------------------------------------------------------===//

#include "engine/test_runner.h"

#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::whilelang;

namespace {

SymbolicTestResult runSym(std::string_view Src,
                          EngineOptions Opts = EngineOptions()) {
  Result<Prog> P = compileWhileSource(Src);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  Solver Slv(Opts.Solver);
  return runSymbolicTest<WhileSMem>(*P, "main", Opts, Slv);
}

} // namespace

TEST(WhileSymbolic, VerifiesCorrectAbs) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      x := fresh_int();
      if (x < 0) { y := 0 - x; } else { y := x; }
      assert (0 <= y);
      return y;
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
  EXPECT_GE(R.PathsReturned, 2u) << "both signs explored";
}

TEST(WhileSymbolic, FindsSeededOffByOne) {
  // Bug: boundary x == 10 passes the guard but violates the assert.
  SymbolicTestResult R = runSym(R"(
    function main() {
      x := fresh_int();
      assume (0 <= x && x <= 10);
      assert (x < 10);
      return x;
    })");
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.hasConfirmedBug()) << "must come with a verified model";
  // The counter-model must pin x to exactly 10.
  EXPECT_NE(R.Bugs[0].CounterModel.find("10"), std::string::npos)
      << R.Bugs[0].CounterModel;
}

TEST(WhileSymbolic, AssumePrunesViolatingInputs) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      x := fresh_int();
      assume (5 < x);
      assert (0 < x);
      return x;
    })");
  EXPECT_TRUE(R.verified());
  EXPECT_GE(R.PathsVanished, 1u) << "the assume cut is a vanished path";
}

TEST(WhileSymbolic, SymbolicObjectValuesFlowThroughHeap) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      v := fresh_int();
      o := { data: v };
      w := o.data;
      assert (w == v);
      return w;
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
}

TEST(WhileSymbolic, HeapBugWithSymbolicGuard) {
  // Writing to o.b only on one branch and reading unconditionally: the
  // other branch faults on a missing property.
  SymbolicTestResult R = runSym(R"(
    function main() {
      x := fresh_int();
      o := { a: 1 };
      if (0 < x) { o.b := 2; }
      r := o.b;
      return r;
    })");
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.hasConfirmedBug());
  EXPECT_NE(R.Bugs[0].Message.find("no property"), std::string::npos)
      << R.Bugs[0].Message;
  EXPECT_GE(R.PathsReturned, 1u) << "the healthy branch still returns";
}

TEST(WhileSymbolic, LoopWithSymbolicBoundVerifiesUpTo) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      n := fresh_int();
      assume (0 <= n && n < 6);
      i := 0; s := 0;
      while (i < n) { s := s + i; i := i + 1; }
      assert (s * 2 == n * (n - 1));
      return s;
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
  EXPECT_GE(R.PathsReturned, 6u) << "one return per n in [0, 6)";
}

TEST(WhileSymbolic, UnboundedLoopReportsBoundNotVerification) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      n := fresh_int();
      assume (0 <= n);
      i := 0;
      while (i < n) { i := i + 1; }
      assert (i == n);
      return i;
    })");
  EXPECT_TRUE(R.ok()) << "no assertion failure within the bound";
  EXPECT_FALSE(R.verified()) << "but no verification verdict either";
  EXPECT_GE(R.PathsBounded, 1u);
}

TEST(WhileSymbolic, InterproceduralSymbolicCall) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      a := fresh_int();
      b := fresh_int();
      m := max2(a, b);
      assert (a <= m && b <= m);
      return m;
    }
    function max2(x, y) {
      if (x < y) { return y; }
      return x;
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
}

TEST(WhileSymbolic, DisposeUseAfterFreeAcrossAliasing) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      o := { v: 1 };
      p := o;
      dispose p;
      r := o.v;
      return r;
    })");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Bugs[0].Message.find("disposed"), std::string::npos)
      << R.Bugs[0].Message;
}

TEST(WhileSymbolic, NoFalsePositiveOnInfeasibleFailPath) {
  // The failing branch is infeasible under the assume; sound analysis
  // reports nothing.
  SymbolicTestResult R = runSym(R"(
    function main() {
      x := fresh_int();
      assume (x < 0);
      if (0 < x) { assert (false); }
      return 0;
    })");
  EXPECT_TRUE(R.ok());
}

TEST(WhileSymbolic, LegacyConfigFindsSameBugs) {
  // The JaVerT 2.0 configuration is slower but equally sound/complete on
  // this workload: same verdicts.
  const char *Src = R"(
    function main() {
      x := fresh_int();
      assume (0 <= x && x <= 10);
      assert (x < 10);
      return x;
    })";
  SymbolicTestResult Fast = runSym(Src);
  SymbolicTestResult Slow = runSym(Src, EngineOptions::legacyJaVerT2());
  EXPECT_EQ(Fast.ok(), Slow.ok());
  EXPECT_EQ(Fast.Bugs.size(), Slow.Bugs.size());
  EXPECT_EQ(Fast.PathsReturned, Slow.PathsReturned);
}

TEST(WhileSymbolic, StringInputsAndConstraints) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      s := fresh_str();
      assume (slen(s) == 3);
      t := s @+ "!";
      assert (slen(t) == 4);
      return t;
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
}
