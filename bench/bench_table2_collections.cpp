//===- bench/bench_table2_collections.cpp ---------------------------------===//
//
// Regenerates Table 2 of the paper (§4.2): symbolic testing of the
// Collections-C-style library with Gillian-C (our MC instantiation).
//
// Columns, as in the paper: per data structure, the number of symbolic
// tests (#T), the number of executed GIL commands, and the time. The
// binary then runs the buggy library variant and prints the re-detected
// §4.2 findings, mirroring the finding list of the paper.
//
// After the table, one JSON line reports per-suite and total solver-layer
// statistics — including the canonical slicing cache's hit rate — so A/B
// runs can track cache effectiveness.
//
//===----------------------------------------------------------------------===//

#include "mc/compiler.h"
#include "mc/memory.h"
#include "solver/simplifier.h"
#include "targets/collections_mc.h"
#include "targets/suite_runner.h"

#include <chrono>
#include <cstdio>
#include <set>

using namespace gillian;
using namespace gillian::mc;
using namespace gillian::targets;

namespace {

double seconds(std::chrono::steady_clock::time_point From) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       From)
      .count();
}

Result<Prog> compileSuite(std::string_view Library,
                          const CollectionsSuite &S) {
  std::string Src = std::string(Library) + "\n" + std::string(S.Source);
  return compileMcSource(Src);
}

} // namespace

int main() {
  std::printf("Table 2: Collections-C-style symbolic test suites "
              "(Gillian-C / MC)\n");
  std::printf("%-8s %4s %12s %10s %9s\n", "Name", "#T", "GIL Cmds", "Time",
              "HitRate");

  uint64_t TotalTests = 0, TotalCmds = 0, HealthyBugs = 0;
  double TotalTime = 0;
  SolverStats TotalSolver;
  std::string SuitesJson;
  for (const CollectionsSuite &S : collectionsSuites()) {
    Result<Prog> P = compileSuite(collectionsLibrary(), S);
    if (!P) {
      std::fprintf(stderr, "compile error in %s: %s\n",
                   std::string(S.Name).c_str(), P.error().c_str());
      return 1;
    }
    resetSimplifyCache();
    EngineOptions Opts;
    auto T0 = std::chrono::steady_clock::now();
    SuiteResult R = runSuite<McSMem>(S.Name, *P, Opts);
    double Sec = seconds(T0);
    std::printf("%-8s %4llu %12llu %9.3fs %8.1f%%\n",
                std::string(S.Name).c_str(),
                static_cast<unsigned long long>(R.Tests),
                static_cast<unsigned long long>(R.GilCmds), Sec,
                100.0 * R.Solver.cacheHitRate());
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"%s\",\"tests\":%llu,\"gil_cmds\":%llu,"
                  "\"time_s\":%.6f,\"solver\":",
                  std::string(S.Name).c_str(),
                  static_cast<unsigned long long>(R.Tests),
                  static_cast<unsigned long long>(R.GilCmds), Sec);
    if (!SuitesJson.empty())
      SuitesJson += ",";
    SuitesJson += std::string(Buf) + solverStatsJson(R.Solver) + "}";
    TotalTests += R.Tests;
    TotalCmds += R.GilCmds;
    TotalTime += Sec;
    TotalSolver += R.Solver;
    HealthyBugs += R.Bugs.size();
  }
  std::printf("%-8s %4llu %12llu %9.3fs %8.1f%%\n", "Total",
              static_cast<unsigned long long>(TotalTests),
              static_cast<unsigned long long>(TotalCmds), TotalTime,
              100.0 * TotalSolver.cacheHitRate());

  // The §4.2 finding list, re-detected on the seeded library.
  std::printf("\nFindings on the seeded library (mirrors the §4.2 list):\n");
  std::set<std::string> Findings;
  for (const CollectionsSuite &S : collectionsSuites()) {
    Result<Prog> P = compileSuite(collectionsBuggyLibrary(), S);
    if (!P)
      continue;
    EngineOptions Opts;
    SuiteResult R = runSuite<McSMem>(S.Name, *P, Opts);
    for (const BugReport &B : R.Bugs) {
      std::string Kind;
      if (B.Message.find("out-of-bounds") != std::string::npos)
        Kind = "1. buffer overflow in the dynamic array (off-by-one)";
      else if (B.Message.find("different objects") != std::string::npos)
        Kind = "2. undefined behaviour: pointer comparison across objects";
      else if (B.Message.find("freed pointer") != std::string::npos)
        Kind = "3. comparison of freed pointers";
      else if (B.Message.find("assertion failure") != std::string::npos &&
               B.Message.find("allocation") != std::string::npos)
        Kind = "4. over-allocation in the ring buffer (capacity audit)";
      else
        Kind = "other: " + B.Message.substr(0, 60);
      Findings.insert(Kind + (B.Confirmed ? "  [counter-model verified]"
                                          : "  [unconfirmed]"));
    }
  }
  for (const std::string &F : Findings)
    std::printf("  %s\n", F.c_str());

  std::printf("\nHealthy-library bug reports: %llu (expected 0)\n",
              static_cast<unsigned long long>(HealthyBugs));
  std::printf("Paper shape check: all four seeded finding classes "
              "re-detected; clean library verifies.\n");
  char TotBuf[128];
  std::snprintf(TotBuf, sizeof(TotBuf),
                "{\"tests\":%llu,\"gil_cmds\":%llu,\"time_s\":%.6f,"
                "\"solver\":",
                static_cast<unsigned long long>(TotalTests),
                static_cast<unsigned long long>(TotalCmds), TotalTime);
  std::printf("\n{\"bench\":\"table2_collections\",\"suites\":[%s],"
              "\"total\":%s%s}}\n",
              SuitesJson.c_str(), TotBuf,
              solverStatsJson(TotalSolver).c_str());
  return HealthyBugs == 0 && Findings.size() >= 4 ? 0 : 1;
}
