# Empty dependencies file for gillian_targets.
# This may be replaced when dependencies are built.
