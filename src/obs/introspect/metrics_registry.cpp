//===- obs/introspect/metrics_registry.cpp --------------------------------===//

#include "obs/introspect/metrics_registry.h"

#include <algorithm>

using namespace gillian::obs;

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry R;
  return R;
}

uint64_t MetricsRegistry::add(MetricsFn Fn) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Token = NextToken++;
  Sources.emplace_back(Token, std::move(Fn));
  return Token;
}

void MetricsRegistry::remove(uint64_t Token) {
  std::lock_guard<std::mutex> Lock(Mu);
  Sources.erase(std::remove_if(Sources.begin(), Sources.end(),
                               [Token](const auto &S) {
                                 return S.first == Token;
                               }),
                Sources.end());
}

void MetricsRegistry::render(PromWriter &W) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Token, Fn] : Sources) {
    (void)Token;
    Fn(W);
  }
}
