//===- tests/engine/summary_persist_test.cpp ------------------------------===//
//
// Persistence and cold-reset of the procedure summary store: save/load
// round-trips recorded execution trees through a text file so a second
// run replays without re-recording (warm-start); Solver::resetCache()
// demonstrably colds the process-wide store through the registered hook;
// garbage files load what parses and skip the rest; a failed save leaves
// the target untouched and cleans its staging temp — the same contract
// cache_persist_test pins for the solver result cache.
//
//===----------------------------------------------------------------------===//

#include "engine/summary/summary_store.h"

#include "engine/interpreter.h"
#include "engine/scheduler/exploration_scheduler.h"
#include "obs/summary_stats.h"
#include "solver/solver.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

using namespace gillian;
using namespace gillian::whilelang;

namespace {

// Two eligible helpers, called with symbolic and concrete arguments under
// several path conditions: the run populates the store with a handful of
// distinct (fingerprint, argument, slice) entries.
constexpr const char *Src = R"(
  function main() {
    x := fresh_int();
    assume (0 <= x && x < 4);
    a := clamppos(x);
    b := clamppos(x - 2);
    c := double(3);
    s := a + b + c;
    assert (0 <= s);
    return s;
  }
  function clamppos(v) {
    if (v < 0) { return 0; }
    return v;
  }
  function double(v) { return v * 2; })";

using St = SymbolicState<WhileSMem>;

/// Explores Src's main with summaries on (the default), sharing the
/// process-wide store.
void runOnce(Solver &Slv) {
  Result<Prog> P = compileWhileSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  EngineOptions Opts;
  ExecStats Stats;
  St Init(WhileSMem(), &Slv, &Opts);
  Interpreter<St> Interp(*P, Opts, Stats);
  Result<std::vector<TraceResult<St>>> Traces = runExploration(
      Interp, InternedString::get("main"), Expr::list({}), std::move(Init));
  ASSERT_TRUE(Traces.ok()) << Traces.error();
  EXPECT_FALSE(Traces->empty());
}

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + Name;
}

/// The sibling temp file save() stages its writes through.
std::string tempSibling(const std::string &Path) {
  return Path + "." + std::to_string(::getpid()) + ".tmp";
}

} // namespace

TEST(SummaryPersistTest, SaveLoadRoundTripReplaysWithoutReRecording) {
  const std::string Path = tempPath("gillian_summaries_roundtrip.txt");
  ProcedureSummaryStore &Store = ProcedureSummaryStore::process();
  Store.clear();
  Solver Slv;
  runOnce(Slv);
  ASSERT_GT(Store.size(), 0u) << "run recorded no summaries";
  long Saved = Store.save(Path);
  ASSERT_GE(Saved, 1);
  EXPECT_EQ(static_cast<size_t>(Saved), Store.size());

  // Cold reset, then seed from the file: the second run must answer every
  // eligible call from the loaded store — hits move, misses (fresh
  // recordings) do not. That is the warm-start regression: a process that
  // loads a persisted store replays immediately.
  Store.clear();
  ASSERT_EQ(Store.size(), 0u);
  EXPECT_EQ(Store.load(Path), Saved);
  EXPECT_EQ(static_cast<size_t>(Saved), Store.size());
  EXPECT_GT(Store.bytes(), 0u);

  obs::SummaryGlobalStats &G = obs::summaryGlobalStats();
  uint64_t Hits0 = G.Hits.load(), Misses0 = G.Misses.load();
  Solver Slv2;
  runOnce(Slv2);
  EXPECT_GT(G.Hits.load(), Hits0)
      << "loaded store took no hit: entries did not round-trip";
  EXPECT_EQ(G.Misses.load(), Misses0)
      << "warm run re-recorded a summary the file should have supplied";
}

TEST(SummaryPersistTest, SolverResetCacheColdsTheSummaryStore) {
  // The store registers itself as a Solver::resetCache() hook on first
  // process() access, so the solver-layer reset entry point colds the
  // engine-layer store too — "cold start" means cold across both layers.
  ProcedureSummaryStore &Store = ProcedureSummaryStore::process();
  Store.clear();
  Solver Slv;
  runOnce(Slv);
  ASSERT_GT(Store.size(), 0u);
  uint64_t Gen = Store.generation();
  Slv.resetCache();
  EXPECT_EQ(Store.size(), 0u)
      << "resetCache() left summary entries resident";
  EXPECT_EQ(Store.bytes(), 0u);
  EXPECT_GT(Store.generation(), Gen);

  // The explicit whole-stack spelling does the same.
  Solver Slv2;
  runOnce(Slv2);
  ASSERT_GT(Store.size(), 0u);
  resetEngineCaches(Slv2);
  EXPECT_EQ(Store.size(), 0u);
}

TEST(SummaryPersistTest, LoadSkipsGarbageAndMissingFilesFail) {
  ProcedureSummaryStore &Store = ProcedureSummaryStore::process();
  Store.clear();
  EXPECT_EQ(Store.load(::testing::TempDir() +
                       "gillian_no_such_summary_file.txt"),
            -1);

  // A saved file with garbage spliced between entries: the loader skips
  // malformed records, resyncs on the next SUMMARY header, and loads
  // exactly the well-formed entries.
  const std::string Path = tempPath("gillian_summaries_garbage.txt");
  Solver Slv;
  runOnce(Slv);
  long Saved = Store.save(Path);
  ASSERT_GE(Saved, 1);
  {
    std::ofstream Out(Path, std::ios::app);
    Out << "not a summary record\n";
    Out << "SUMMARY\tbroken\tnothex\t0\t2\n"; // bad fingerprint
    Out << "N\tR\t1\t0\t0\t-\t0\t)(bad expr\n";
  }
  Store.clear();
  EXPECT_EQ(Store.load(Path), Saved);
  EXPECT_EQ(static_cast<size_t>(Saved), Store.size());

  // A file of pure garbage loads nothing — and is not an I/O error.
  const std::string Junk = tempPath("gillian_summaries_junk.txt");
  {
    std::ofstream Out(Junk, std::ios::trunc);
    Out << "SAT\t(0 <= #x)\n"; // a solver-cache line, not a summary
    Out << "garbage\n";
  }
  Store.clear();
  EXPECT_EQ(Store.load(Junk), 0);
  EXPECT_EQ(Store.size(), 0u);
}

TEST(SummaryPersistTest, FailedSaveKeepsTargetAndRemovesTemp) {
  // Rename onto a non-empty directory fails after a fully-successful temp
  // write: save() must report -1, clean up the temp, and leave the target
  // directory untouched.
  const std::string Dir = tempPath("gillian_summaries_dir.d");
  ::mkdir(Dir.c_str(), 0755);
  const std::string Inner = Dir + "/occupant";
  {
    std::ofstream Out(Inner, std::ios::trunc);
    Out << "x\n";
  }
  ProcedureSummaryStore &Store = ProcedureSummaryStore::process();
  Store.clear();
  Solver Slv;
  runOnce(Slv);
  ASSERT_GT(Store.size(), 0u);
  EXPECT_EQ(Store.save(Dir), -1);

  struct stat StBuf;
  EXPECT_NE(::stat(tempSibling(Dir).c_str(), &StBuf), 0)
      << "temp file not cleaned up after failed rename";
  ASSERT_EQ(::stat(Dir.c_str(), &StBuf), 0);
  EXPECT_TRUE(S_ISDIR(StBuf.st_mode));
  EXPECT_EQ(::stat(Inner.c_str(), &StBuf), 0);

  // An unopenable temp location (missing parent directory) also fails
  // cleanly with -1.
  EXPECT_EQ(Store.save(::testing::TempDir() +
                       "gillian_no_such_dir/summaries.txt"),
            -1);
}
