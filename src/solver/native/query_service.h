//===- solver/native/query_service.h - Async solver service ----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The asynchronous batched query service (DESIGN.md §4f): a process-wide
/// pool of solver threads behind a bounded submission queue. Scheduler
/// workers submit undecided path conditions and block on a future; the
/// service
///
///  * deduplicates in-flight identical queries (same owner, same canonical
///    condition) so concurrent workers exploring sibling branches share
///    one solve;
///  * drains small batches per worker wake-up, keeping solver threads on
///    warm native/incremental sessions instead of ping-ponging;
///  * resolves queued queries by subsumption when a finished one answers
///    them: Sat of a superset condition is Sat of every subset it
///    contains, Unsat of a subset is Unsat of every superset (canonical
///    conjunct containment via PathCondition::contains);
///  * degrades gracefully — a full queue or a submission from a service
///    worker itself runs inline, so progress never deadlocks on the pool.
///
/// The service runs the *caller-provided* solve closure, so per-Solver
/// options, caches and statistics all keep working; verdicts are cached by
/// the caller after the future resolves, exactly as in the inline path.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_NATIVE_QUERY_SERVICE_H
#define GILLIAN_SOLVER_NATIVE_QUERY_SERVICE_H

#include "solver/path_condition.h"
#include "solver/syntactic.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gillian {
struct SolverStats;
}

namespace gillian::native {

class SolverService {
public:
  /// The solve closure run on a service thread (or inline on overflow).
  using SolveFn = std::function<SatResult(const PathCondition &)>;

  /// The process-wide service (threads are spawned lazily up to the
  /// highest MaxWorkers ever requested).
  static SolverService &process();

  /// True on a service worker thread — submissions from there run inline
  /// (a worker blocking on the pool it serves would deadlock it).
  static bool onWorkerThread();

  /// Solves \p PC through the service and blocks until the verdict is
  /// available. \p Owner scopes deduplication and subsumption (queries of
  /// different Solver instances never share results — their options may
  /// differ). \p Stats receives the submission-side counters.
  SatResult checkSat(const void *Owner, const PathCondition &PC,
                     unsigned MaxWorkers, const SolveFn &Fn,
                     SolverStats &Stats);

  /// Blocks until every submitted query has resolved and every worker is
  /// idle (quiescence point for resetCache / bench cold starts).
  void flush();

  size_t queueDepth();
  size_t workers();

  ~SolverService();

private:
  struct Pending;
  using PendingPtr = std::shared_ptr<Pending>;

  SolverService() = default;

  void ensureWorkers(unsigned MaxWorkers);
  void workerMain();
  /// Resolves \p Done's result into every queued query it subsumes.
  /// Caller holds the lock.
  void applySubsumption(const PendingPtr &Done, SatResult R);

  static constexpr size_t QueueCap = 256;
  static constexpr size_t BatchMax = 4;

  std::mutex Mu;
  std::condition_variable WorkCV; ///< queue non-empty / stop
  std::condition_variable IdleCV; ///< flush waiters
  std::vector<PendingPtr> InFlight;
  std::deque<PendingPtr> Queue;
  std::vector<std::thread> Workers;
  size_t ActiveWorkers = 0; ///< workers currently running solves
  bool Stopping = false;
};

} // namespace gillian::native

#endif // GILLIAN_SOLVER_NATIVE_QUERY_SERVICE_H
