//===- solver/native/native_session.h - Incremental native solver -*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native decision procedure for the boolean/equality/disequality
/// skeleton of path conditions — the solver-stack layer between the
/// syntactic core and the Z3 backends (DESIGN.md §4f). A session mirrors
/// the IncrementalSession push/pop prefix discipline: asserted conjuncts
/// live in a stack of frames over the query's canonical conjunct order; a
/// query extending the asserted prefix pays only for its delta, and
/// divergence pops frames in O(delta) (trail marks into the clause store
/// and equality core).
///
/// Per query the session:
///  1. translates conjuncts into clauses over interned atoms — equalities
///     become theory atoms linked to the equality core, other
///     boolean-valued expressions (comparisons, boolean variables) become
///     opaque atoms; nested and/or/not structure is Tseitin-encoded
///     exactly. A conjunct that does not translate exactly is dropped
///     (recorded per frame), which only ever *weakens* the store;
///  2. runs DPLL — watched-literal propagation, VSIDS decisions with phase
///     saving, chronological backtracking — asserting equality atoms into
///     the union-find core as they are assigned;
///  3. on an exhausted search answers Unsat: sound, because every clause is
///     implied by a subset of the query's conjuncts and every theory
///     conflict is a valid equality-logic consequence;
///  4. on a consistent total assignment builds a candidate model (class
///     literals, order-hint relaxation, distinct values across
///     disequality edges) and answers Sat only when the model *evaluates*
///     every conjunct of the full query to true — false Sat is impossible
///     by construction, dropped conjuncts included;
///  5. answers Unknown otherwise, and the caller falls through to Z3 —
///     the verdict-identity contract (never contradict the cold backend)
///     enforced by tests/targets/native_differential_test.cpp.
///
/// NativeSessionPool mirrors IncrementalSessionPool: a small thread-local
/// pool routed by longest reusable prefix, with cross-thread invalidation
/// via a generation counter (Solver::resetCache, bench cold starts).
/// Sessions hold no external handles, but stay thread-confined for the
/// same reason the scheduler shares nothing hot between workers.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_NATIVE_NATIVE_SESSION_H
#define GILLIAN_SOLVER_NATIVE_NATIVE_SESSION_H

#include "solver/path_condition.h"
#include "solver/syntactic.h"
#include "solver/type_infer.h"

#include <memory>
#include <vector>

namespace gillian {
struct SolverStats;
}

namespace gillian::native {

class NativeSession {
public:
  NativeSession();
  ~NativeSession();
  NativeSession(const NativeSession &) = delete;
  NativeSession &operator=(const NativeSession &) = delete;

  /// How many of \p PC's canonical conjuncts the live frame prefix already
  /// asserts (0 when nothing is reusable). Pure inspection, used by the
  /// pool to route queries.
  size_t reusableConjuncts(const PathCondition &PC) const;

  /// Decides \p PC natively where possible: Unsat on a proof, Sat only
  /// with a model verified by evaluating every conjunct, Unknown otherwise
  /// (caller delegates to Z3). \p Types feeds model construction only —
  /// translation and Unsat reasoning are type-independent.
  SatResult checkSat(const PathCondition &PC, const TypeEnv &Types,
                     SolverStats &Stats);

  /// Drops every frame, clause, term and atom.
  void reset();

  size_t depth() const;             ///< live frames
  size_t assertedConjuncts() const; ///< conjuncts covered by live frames

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// A small per-thread pool of native sessions — the same approximate
/// prefix trie as IncrementalSessionPool. Obtain via forThread(); never
/// share an instance across threads.
class NativeSessionPool {
public:
  static constexpr size_t MaxSessions = 4;

  static NativeSessionPool &forThread();

  /// Invalidates every thread's sessions (generation bump; each pool
  /// drops its sessions lazily on next use from its own thread).
  static void invalidateAll();

  /// Routes \p PC to the best-sharing session and checks it there.
  SatResult checkSat(const PathCondition &PC, const TypeEnv &Types,
                     SolverStats &Stats);

  size_t sessions();
  void reset();

private:
  void maybeGenerationReset();

  std::vector<std::unique_ptr<NativeSession>> Pool; ///< LRU→MRU order
  uint64_t LocalGen = 0;
};

} // namespace gillian::native

#endif // GILLIAN_SOLVER_NATIVE_NATIVE_SESSION_H
