//===- solver/simplifier.cpp ----------------------------------------------===//

#include "solver/simplifier.h"

#include "obs/span.h"
#include "solver/type_infer.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

using namespace gillian;

namespace {

/// True when evaluating \p E can never fault (no type errors, no division
/// by zero, no out-of-bounds). Simplification rules that *discard* a
/// subexpression (e.g. e && false -> false) require the discarded operand
/// to be total, so a concretely-faulting expression is never simplified
/// into a succeeding one.
bool isTotal(const Expr &E, const TypeEnv &Env) {
  if (!E)
    return false;
  switch (E.kind()) {
  case ExprKind::Lit:
  case ExprKind::LVar:
    return true;
  case ExprKind::PVar:
    // Unbound program variables fault; substitution happens before
    // simplification in the symbolic engine, so PVars here are
    // conservative.
    return false;
  case ExprKind::List:
    for (size_t I = 0, N = E.numChildren(); I != N; ++I)
      if (!isTotal(E.child(I), Env))
        return false;
    return true;
  case ExprKind::UnOp: {
    const Expr &C = E.child(0);
    if (!isTotal(C, Env))
      return false;
    auto T = staticType(C, Env);
    switch (E.unOpKind()) {
    case UnOpKind::TypeOf:
      return true;
    case UnOpKind::Not:
      return T == GilType::Bool;
    case UnOpKind::Neg:
      return T == GilType::Int || T == GilType::Num;
    case UnOpKind::BitNot:
      return T == GilType::Int;
    case UnOpKind::StrLen:
      return T == GilType::Str;
    case UnOpKind::ListLen:
      return T == GilType::List;
    case UnOpKind::ToNum:
      return T == GilType::Int || T == GilType::Num;
    case UnOpKind::ToInt:
      return T == GilType::Int; // Num -> Int faults on non-finite input
    case UnOpKind::NumToStr:
      return T == GilType::Int || T == GilType::Num;
    default:
      return false; // Head/Tail/StrToNum can fault
    }
  }
  case ExprKind::BinOp: {
    const Expr &A = E.child(0), &B = E.child(1);
    if (!isTotal(A, Env) || !isTotal(B, Env))
      return false;
    auto TA = staticType(A, Env), TB = staticType(B, Env);
    auto numeric = [](std::optional<GilType> T) {
      return T == GilType::Int || T == GilType::Num;
    };
    switch (E.binOpKind()) {
    case BinOpKind::Eq:
      return true;
    case BinOpKind::And:
    case BinOpKind::Or:
      return TA == GilType::Bool && TB == GilType::Bool;
    case BinOpKind::Add:
    case BinOpKind::Sub:
    case BinOpKind::Mul:
      return numeric(TA) && numeric(TB);
    case BinOpKind::Div:
    case BinOpKind::Mod:
      // Faults when an Int divisor is zero; safe only for nonzero literal.
      return numeric(TA) && B.isLit() && B.litValue().isInt() &&
             B.litValue().asInt() != 0;
    case BinOpKind::Lt:
    case BinOpKind::Le:
      return (numeric(TA) && numeric(TB)) ||
             (TA == GilType::Str && TB == GilType::Str);
    case BinOpKind::StrCat:
      return TA == GilType::Str && TB == GilType::Str;
    case BinOpKind::ListConcat:
      return TA == GilType::List && TB == GilType::List;
    case BinOpKind::Cons:
      return TB == GilType::List;
    case BinOpKind::BitAnd:
    case BinOpKind::BitOr:
    case BinOpKind::BitXor:
      return TA == GilType::Int && TB == GilType::Int;
    default:
      return false; // ListNth/StrNth/Shl/Shr can fault
    }
  }
  }
  return false;
}

/// If \p E is a literal list or a List expression whose elements are all
/// literals or general exprs, exposes it as a uniform element view.
/// Returns true and fills \p Elems on success.
bool asListElems(const Expr &E, std::vector<Expr> &Elems) {
  if (E.kind() == ExprKind::List) {
    for (size_t I = 0, N = E.numChildren(); I != N; ++I)
      Elems.push_back(E.child(I));
    return true;
  }
  if (E.isLit() && E.litValue().isList()) {
    for (const Value &V : E.litValue().asList())
      Elems.push_back(Expr::lit(V));
    return true;
  }
  return false;
}

Expr simplifyNode(const Expr &E, const TypeEnv &Env);

Expr simplifyUnOp(UnOpKind Op, const Expr &C, const Expr &Orig,
                  const TypeEnv &Env) {
  // Constant folding through the interpreter's own operator semantics.
  if (C.isLit()) {
    Result<Value> R = evalUnOp(Op, C.litValue());
    if (R)
      return Expr::lit(R.take());
  }
  switch (Op) {
  case UnOpKind::Not:
    // !!e -> e (only when e is Bool-typed, so the inner fault behaviour of
    // the double negation is the same as e's own).
    if (C.kind() == ExprKind::UnOp && C.unOpKind() == UnOpKind::Not &&
        staticType(C.child(0), Env) == GilType::Bool)
      return C.child(0);
    // !(a < b) over Ints -> b <= a (total order; not valid for Num/NaN).
    if (C.kind() == ExprKind::BinOp &&
        (C.binOpKind() == BinOpKind::Lt || C.binOpKind() == BinOpKind::Le)) {
      const Expr &A = C.child(0), &B = C.child(1);
      if (staticType(A, Env) == GilType::Int &&
          staticType(B, Env) == GilType::Int)
        return C.binOpKind() == BinOpKind::Lt
                   ? Expr::le(B, A)
                   : Expr::lt(B, A);
    }
    break;
  case UnOpKind::Neg:
    // -(-e) -> e for numeric e.
    if (C.kind() == ExprKind::UnOp && C.unOpKind() == UnOpKind::Neg) {
      auto T = staticType(C.child(0), Env);
      if (T == GilType::Int || T == GilType::Num)
        return C.child(0);
    }
    break;
  case UnOpKind::TypeOf: {
    auto T = staticType(C, Env);
    if (T && isTotal(C, Env))
      return Expr::lit(Value::typeV(*T));
    break;
  }
  case UnOpKind::ListLen: {
    std::vector<Expr> Elems;
    if (asListElems(C, Elems) && isTotal(C, Env))
      return Expr::intE(static_cast<int64_t>(Elems.size()));
    // len(a ++ b) -> len(a) + len(b)
    if (C.kind() == ExprKind::BinOp &&
        C.binOpKind() == BinOpKind::ListConcat)
      return simplifyNode(Expr::add(Expr::unOp(UnOpKind::ListLen, C.child(0)),
                    Expr::unOp(UnOpKind::ListLen, C.child(1))),
          Env);
    break;
  }
  case UnOpKind::Head: {
    std::vector<Expr> Elems;
    if (asListElems(C, Elems) && !Elems.empty() && isTotal(C, Env))
      return Elems.front();
    break;
  }
  case UnOpKind::Tail: {
    std::vector<Expr> Elems;
    if (asListElems(C, Elems) && !Elems.empty() && isTotal(C, Env))
      return Expr::list(std::vector<Expr>(Elems.begin() + 1, Elems.end()));
    break;
  }
  case UnOpKind::ToNum:
    if (staticType(C, Env) == GilType::Num)
      return C;
    break;
  case UnOpKind::ToInt:
    if (staticType(C, Env) == GilType::Int)
      return C;
    break;
  default:
    break;
  }
  if (C == Orig.child(0))
    return Orig;
  return Expr::unOp(Op, C);
}

/// Recognises e + c / e - c shapes over Int (c literal); used to combine
/// chained offsets into a canonical e + c.
bool asIntOffset(const Expr &E, Expr &Base, int64_t &Off) {
  if (E.kind() == ExprKind::BinOp && E.binOpKind() == BinOpKind::Add &&
      E.child(1).isLit() && E.child(1).litValue().isInt()) {
    Base = E.child(0);
    Off = E.child(1).litValue().asInt();
    return true;
  }
  return false;
}

Expr simplifyBinOp(BinOpKind Op, const Expr &A, const Expr &B,
                   const Expr &Orig, const TypeEnv &Env) {
  if (A.isLit() && B.isLit()) {
    Result<Value> R = evalBinOp(Op, A.litValue(), B.litValue());
    if (R)
      return Expr::lit(R.take());
  }
  auto intTyped = [&](const Expr &E) {
    return staticType(E, Env) == GilType::Int;
  };
  auto rebuild = [&]() {
    if (A == Orig.child(0) && B == Orig.child(1))
      return Orig;
    return Expr::binOp(Op, A, B);
  };

  switch (Op) {
  case BinOpKind::And:
    if (A.isTrue())
      return B;
    if (B.isTrue())
      return A;
    // Discarding rules need the discarded side total (see isTotal).
    if (A.isFalse()) // concrete && short-circuits, so B is never evaluated
      return Expr::boolE(false);
    if (B.isFalse() && isTotal(A, Env))
      return Expr::boolE(false);
    if (A == B && staticType(A, Env) == GilType::Bool)
      return A;
    break;
  case BinOpKind::Or:
    if (A.isFalse())
      return B;
    if (B.isFalse())
      return A;
    if (A.isTrue())
      return Expr::boolE(true);
    if (B.isTrue() && isTotal(A, Env))
      return Expr::boolE(true);
    if (A == B && staticType(A, Env) == GilType::Bool)
      return A;
    break;
  case BinOpKind::Eq: {
    if (A == B && isTotal(A, Env))
      return Expr::boolE(true);
    auto TA = staticType(A, Env), TB = staticType(B, Env);
    // Structurally different types are never equal (GIL equality does not
    // coerce; 1 != 1.0).
    if (TA && TB && *TA != *TB && isTotal(A, Env) && isTotal(B, Env))
      return Expr::boolE(false);
    // Element-wise decomposition of list equality; crucial for pointer
    // values ([block, offset] lists) in the MC instantiation.
    std::vector<Expr> EA, EB;
    if (asListElems(A, EA) && asListElems(B, EB)) {
      bool AllTotal = isTotal(A, Env) && isTotal(B, Env);
      if (EA.size() != EB.size()) {
        if (AllTotal)
          return Expr::boolE(false);
        break;
      }
      if (AllTotal) {
        Expr Conj = Expr::boolE(true);
        for (size_t I = 0; I != EA.size(); ++I)
          Conj = simplifyNode(
              Expr::andE(Conj, simplifyNode(Expr::eq(EA[I], EB[I]), Env)),
              Env);
        return Conj;
      }
    }
    // num_to_str is injective on Num (our rendering is canonical), so
    // equality of renderings is equality of the numbers. This is what
    // lets computed property keys of symbolic numbers alias correctly.
    {
      auto isNumToStrOfNum = [&](const Expr &E) {
        return E.kind() == ExprKind::UnOp &&
               E.unOpKind() == UnOpKind::NumToStr &&
               staticType(E.child(0), Env) == GilType::Num;
      };
      if (isNumToStrOfNum(A) && isNumToStrOfNum(B))
        return simplifyNode(Expr::eq(A.child(0), B.child(0)), Env);
      // num_to_str(x) == "s": decode "s" back to the unique double that
      // renders as it (or refute when "s" is not a canonical rendering).
      const Expr *NS = isNumToStrOfNum(A) ? &A : nullptr;
      const Expr *LitStr = nullptr;
      if (NS && B.isLit() && B.litValue().isStr())
        LitStr = &B;
      if (!NS && isNumToStrOfNum(B) && A.isLit() && A.litValue().isStr()) {
        NS = &B;
        LitStr = &A;
      }
      if (NS && LitStr) {
        std::string S(LitStr->litValue().asStr().str());
        char *End = nullptr;
        double D = std::strtod(S.c_str(), &End);
        bool Parsed = !S.empty() && End == S.c_str() + S.size();
        if (Parsed) {
          Result<Value> Render = evalUnOp(UnOpKind::NumToStr, Value::numV(D));
          if (Render && Render->isStr() && Render->asStr().str() == S)
            return simplifyNode(Expr::eq(NS->child(0), Expr::numE(D)), Env);
        }
        return Expr::boolE(false); // no double renders as this string
      }
    }
    // Distinct uninterpreted symbols are distinct values (folded already
    // by the literal case). Normalise literal to the right.
    if (A.isLit() && !B.isLit())
      return simplifyNode(Expr::eq(B, A), Env);
    // (e + c1) == c2  ->  e == c2 - c1 over Int.
    {
      Expr Base;
      int64_t Off;
      if (asIntOffset(A, Base, Off) && B.isLit() && B.litValue().isInt() &&
          intTyped(Base))
        return simplifyNode(
            Expr::eq(Base, Expr::intE(B.litValue().asInt() - Off)), Env);
    }
    break;
  }
  case BinOpKind::Add: {
    if (B.isLit() && B.litValue().isInt() && B.litValue().asInt() == 0 &&
        intTyped(A))
      return A;
    if (A.isLit() && B.isLit())
      break; // folded above when well-typed
    // Move the literal right: c + e -> e + c (Int only; addition on Int is
    // commutative and total given numeric typing).
    if (A.isLit() && A.litValue().isInt() && intTyped(B))
      return simplifyNode(Expr::add(B, A), Env);
    // (e + c1) + c2 -> e + (c1 + c2).
    Expr Base;
    int64_t Off;
    if (asIntOffset(A, Base, Off) && B.isLit() && B.litValue().isInt() &&
        intTyped(Base))
      return simplifyNode(
          Expr::add(Base, Expr::intE(Off + B.litValue().asInt())), Env);
    break;
  }
  case BinOpKind::Sub: {
    if (B.isLit() && B.litValue().isInt() && intTyped(A)) {
      if (B.litValue().asInt() == 0)
        return A;
      // e - c -> e + (-c), canonicalising offset chains.
      return simplifyNode(Expr::add(A, Expr::intE(-B.litValue().asInt())), Env);
    }
    if (A == B && intTyped(A) && isTotal(A, Env))
      return Expr::intE(0);
    break;
  }
  case BinOpKind::Mul:
    if (B.isLit() && B.litValue().isInt() && intTyped(A)) {
      if (B.litValue().asInt() == 1)
        return A;
      if (B.litValue().asInt() == 0 && isTotal(A, Env))
        return Expr::intE(0);
    }
    if (A.isLit() && A.litValue().isInt() && intTyped(B))
      return simplifyNode(Expr::binOp(BinOpKind::Mul, B, A), Env);
    break;
  case BinOpKind::Div:
    if (B.isLit() && B.litValue().isInt() && B.litValue().asInt() == 1 &&
        intTyped(A))
      return A;
    break;
  case BinOpKind::Lt:
  case BinOpKind::Le: {
    // (e + c1) < c2 -> e < c2 - c1 over Int.
    Expr Base;
    int64_t Off;
    if (asIntOffset(A, Base, Off) && B.isLit() && B.litValue().isInt() &&
        intTyped(Base))
      return simplifyNode(Expr::binOp(
          Op, Base, Expr::intE(B.litValue().asInt() - Off)), Env);
    if (asIntOffset(B, Base, Off) && A.isLit() && A.litValue().isInt() &&
        intTyped(Base))
      return simplifyNode(Expr::binOp(
          Op, Expr::intE(A.litValue().asInt() - Off), Base), Env);
    if (A == B && isTotal(A, Env) &&
        (intTyped(A) || staticType(A, Env) == GilType::Str))
      return Expr::boolE(Op == BinOpKind::Le);
    break;
  }
  case BinOpKind::ListNth: {
    std::vector<Expr> Elems;
    if (B.isLit() && B.litValue().isInt() && asListElems(A, Elems)) {
      int64_t I = B.litValue().asInt();
      if (I >= 0 && static_cast<size_t>(I) < Elems.size() && isTotal(A, Env))
        return Elems[static_cast<size_t>(I)];
    }
    break;
  }
  case BinOpKind::ListConcat: {
    std::vector<Expr> EA, EB;
    if (asListElems(A, EA) && asListElems(B, EB)) {
      EA.insert(EA.end(), EB.begin(), EB.end());
      return Expr::list(std::move(EA));
    }
    if (asListElems(A, EA) && EA.empty())
      return B;
    if (asListElems(B, EB) && EB.empty())
      return A;
    break;
  }
  case BinOpKind::Cons: {
    std::vector<Expr> EB;
    if (asListElems(B, EB)) {
      std::vector<Expr> Out;
      Out.reserve(EB.size() + 1);
      Out.push_back(A);
      Out.insert(Out.end(), EB.begin(), EB.end());
      return Expr::list(std::move(Out));
    }
    break;
  }
  case BinOpKind::StrCat:
    if (B.isLit() && B.litValue().isStr() && B.litValue().asStr().str().empty() &&
        staticType(A, Env) == GilType::Str)
      return A;
    if (A.isLit() && A.litValue().isStr() && A.litValue().asStr().str().empty() &&
        staticType(B, Env) == GilType::Str)
      return B;
    break;
  default:
    break;
  }
  return rebuild();
}

Expr simplifyNode(const Expr &E, const TypeEnv &Env) {
  if (!E)
    return E;
  switch (E.kind()) {
  case ExprKind::Lit:
  case ExprKind::PVar:
  case ExprKind::LVar:
    return E;
  case ExprKind::UnOp: {
    Expr C = simplifyNode(E.child(0), Env);
    return simplifyUnOp(E.unOpKind(), C, E, Env);
  }
  case ExprKind::BinOp: {
    Expr A = simplifyNode(E.child(0), Env);
    Expr B = simplifyNode(E.child(1), Env);
    return simplifyBinOp(E.binOpKind(), A, B, E, Env);
  }
  case ExprKind::List: {
    std::vector<Expr> Kids;
    Kids.reserve(E.numChildren());
    bool Changed = false, AllLit = true;
    for (size_t I = 0, N = E.numChildren(); I != N; ++I) {
      Expr S = simplifyNode(E.child(I), Env);
      Changed |= S != E.child(I);
      AllLit &= S.isLit();
      Kids.push_back(std::move(S));
    }
    if (AllLit) {
      std::vector<Value> Vals;
      Vals.reserve(Kids.size());
      for (const Expr &K : Kids)
        Vals.push_back(K.litValue());
      return Expr::lit(Value::listV(std::move(Vals)));
    }
    if (!Changed)
      return E;
    return Expr::list(std::move(Kids));
  }
  }
  return E;
}

/// Cache key: an expression under a specific type environment (by content
/// hash). This uses EnvHash as equality, so it depends on TypeEnv::hash
/// mixing each (variable, type) pair jointly — environments that merely
/// swap types between variables must not collide. With that, residual
/// collisions across distinct environments are astronomically unlikely
/// (random 64-bit) and only affect rule applicability for open terms,
/// never evaluated values of closed expressions.
struct MemoKey {
  uint64_t EnvHash;
  Expr E;
  friend bool operator==(const MemoKey &A, const MemoKey &B) {
    return A.EnvHash == B.EnvHash && A.E == B.E;
  }
};

struct MemoKeyHash {
  size_t operator()(const MemoKey &K) const {
    return K.E.hash() ^ (K.EnvHash * 0x9E3779B97F4A7C15ull);
  }
};

/// The process-wide memo, striped across mutex-guarded shards (keyed by
/// the memo hash) so the parallel exploration workers can share it: a
/// simplification computed by one worker is a hit for every other.
/// Stats are relaxed atomics; racing misses of one key duplicate work but
/// never produce different results (simplify is deterministic).
struct MemoCache {
  static constexpr size_t NumShards = 16;
  struct Shard {
    std::mutex Mu;
    std::unordered_map<MemoKey, Expr, MemoKeyHash> Map;
  };
  Shard Shards[NumShards];
  std::atomic<uint64_t> Hits{0}, Misses{0}, MissNs{0};

  Shard &shardFor(const MemoKey &K) {
    return Shards[(MemoKeyHash()(K) * 0x9E3779B97F4A7C15ull) >> 60];
  }
};

MemoCache &memo() {
  static MemoCache C;
  return C;
}

const TypeEnv &emptyEnv() {
  static const TypeEnv E;
  return E;
}

} // namespace

Expr gillian::simplify(const Expr &E, const TypeEnv *Env) {
  return simplifyNode(E, Env ? *Env : emptyEnv());
}

Expr gillian::simplifyCached(const Expr &E, const TypeEnv *Env) {
  if (!E || E.isLit() || E.kind() == ExprKind::PVar || E.isLVar())
    return E;
  MemoCache &C = memo();
  MemoKey Key{Env ? Env->hash() : 0, E};
  MemoCache::Shard &Sh = C.shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    auto It = Sh.Map.find(Key);
    if (It != Sh.Map.end()) {
      C.Hits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  // Compute outside the shard lock: simplification can be deep, and two
  // threads simplifying different keys of one shard must not serialise.
  C.Misses.fetch_add(1, std::memory_order_relaxed);
  obs::DetailSpan SimplifySpan(obs::SpanKind::Simplify);
  auto T0 = std::chrono::steady_clock::now();
  Expr S = simplifyNode(E, Env ? *Env : emptyEnv());
  C.MissNs.fetch_add(static_cast<uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - T0)
                             .count()),
                     std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    if (Sh.Map.size() > (1u << 16))
      Sh.Map.clear();
    Sh.Map.emplace(std::move(Key), S);
  }
  return S;
}

SimplifyCacheStats gillian::simplifyCacheStats() {
  MemoCache &C = memo();
  SimplifyCacheStats S;
  S.Hits = C.Hits.load(std::memory_order_relaxed);
  S.Misses = C.Misses.load(std::memory_order_relaxed);
  S.MissNs = C.MissNs.load(std::memory_order_relaxed);
  return S;
}

void gillian::resetSimplifyCache() {
  MemoCache &C = memo();
  for (MemoCache::Shard &Sh : C.Shards) {
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    Sh.Map.clear();
  }
  C.Hits.store(0, std::memory_order_relaxed);
  C.Misses.store(0, std::memory_order_relaxed);
  C.MissNs.store(0, std::memory_order_relaxed);
}
