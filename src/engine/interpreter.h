//===- engine/interpreter.h - The GIL interpreter (Fig. 1) -----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GIL semantics of Fig. 1, written once and instantiated both
/// concretely (ConcreteState<M>) and symbolically (SymbolicState<M>) —
/// the template parameter is the paper's state-model parameter S, and the
/// rules below are the transition rules p ⊢ ⟨σ, cs, i⟩ ⇝ ⟨σ', cs', j⟩^o.
///
/// Exploration is a depth-first worklist over configurations; branch
/// points (conditional gotos with both sides feasible, branching memory
/// actions) push extra configurations. Loops unroll up to a per-frame
/// back-jump bound; paths cut by a budget finish with the Bound outcome so
/// the caveat surfaces in results ("bounded verification", §1).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_INTERPRETER_H
#define GILLIAN_ENGINE_INTERPRETER_H

#include "engine/options.h"
#include "engine/state.h"
#include "engine/stats.h"
#include "gil/prog.h"

#include <chrono>
#include <string>
#include <vector>

namespace gillian {

/// Def 2.1's requirement that GIL states expose the proper actions: the
/// exact interface the interpreter consumes.
template <typename St>
concept StateModel =
    std::copyable<St> && requires(St S, const St CS, const Expr &E,
                                  InternedString X,
                                  typename St::ValueT V, uint32_t Site) {
      typename St::ValueT;
      typename St::StoreT;
      { CS.evalExpr(E) } -> std::same_as<Result<typename St::ValueT>>;
      { S.setVar(X, V) };
      { CS.getStore() } -> std::same_as<typename St::StoreT>;
      { S.setStore(CS.getStore()) };
      {
        CS.assumeValue(V)
      } -> std::same_as<Result<std::optional<St>>>;
      { S.allocUSym(Site) } -> std::same_as<typename St::ValueT>;
      { S.allocISym(Site) } -> std::same_as<typename St::ValueT>;
      {
        CS.execAction(X, V)
      } -> std::same_as<Result<std::vector<StateBranch<St>>>>;
      {
        CS.asProcId(V)
      } -> std::same_as<std::optional<InternedString>>;
      { St::errorValue(std::string()) } -> std::same_as<typename St::ValueT>;
    };

/// Terminal outcomes o ∈ O (§2.1), extended with the bounded-exploration
/// outcome so budget cuts are never silently conflated with success.
enum class OutcomeKind : uint8_t {
  Return, ///< N(v): top-level return
  Error,  ///< E(v): fail command, memory fault, or runtime type error
  Vanish, ///< silent path cut (assume-false)
  Bound,  ///< path cut by the loop/step budget
};

std::string_view outcomeKindName(OutcomeKind K);

/// A finished path: its outcome, outcome value, and final state (which,
/// symbolically, carries the final path condition used for counter-models
/// and for the §3 restriction-based replay).
template <StateModel St> struct TraceResult {
  OutcomeKind Kind;
  typename St::ValueT Val;
  St Final;
};

/// An inner stack frame ⟨f, x, ρ, i⟩ (§2.1 call stacks).
template <StateModel St> struct Frame {
  InternedString ProcName;
  InternedString RetVar;
  typename St::StoreT SavedStore;
  size_t RetIdx;
  uint32_t SavedBackjumps; ///< caller's loop budget, restored on return
};

template <StateModel St> class Interpreter {
public:
  Interpreter(const Prog &P, const EngineOptions &Opts, ExecStats &Stats)
      : P(P), Opts(Opts), Stats(Stats) {}

  /// Runs procedure \p Entry with argument \p Arg from state \p Init,
  /// exploring all paths. Err(...) reports engine-level misuse (unknown
  /// entry procedure); program-level failures are Error outcomes.
  Result<std::vector<TraceResult<St>>>
  run(InternedString Entry, typename St::ValueT Arg, St Init) {
    const Proc *Main = P.find(Entry);
    if (!Main)
      return Err("unknown entry procedure '" + std::string(Entry.str()) +
                 "'");
    typename St::StoreT Store;
    Store.set(Main->Param, std::move(Arg));
    Init.setStore(std::move(Store));

    auto T0 = std::chrono::steady_clock::now();
    std::vector<TraceResult<St>> Results;
    std::vector<Config> Work;
    Work.push_back(Config{std::move(Init), {}, Entry, 0, 0});
    uint64_t Steps = 0;

    while (!Work.empty()) {
      if ((Opts.MaxSteps && Steps >= Opts.MaxSteps) ||
          (Opts.MaxPaths && Results.size() >= Opts.MaxPaths)) {
        // Out of budget: remaining configurations become Bound outcomes.
        for (Config &C : Work) {
          ++Stats.PathsBounded;
          Results.push_back({OutcomeKind::Bound,
                             St::errorValue("step budget exhausted"),
                             std::move(C.State)});
        }
        break;
      }
      Config C = std::move(Work.back());
      Work.pop_back();
      ++Steps;
      step(std::move(C), Work, Results);
    }
    Stats.EngineNs += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    return Results;
  }

private:
  struct Config {
    St State;
    std::vector<Frame<St>> Stack;
    InternedString CurProc;
    size_t I;
    uint32_t Backjumps;
  };

  void finish(std::vector<TraceResult<St>> &Results, OutcomeKind K,
              typename St::ValueT V, St S) {
    switch (K) {
    case OutcomeKind::Return: ++Stats.PathsFinished; break;
    case OutcomeKind::Error: ++Stats.PathsErrored; break;
    case OutcomeKind::Vanish: ++Stats.PathsVanished; break;
    case OutcomeKind::Bound: ++Stats.PathsBounded; break;
    }
    Results.push_back({K, std::move(V), std::move(S)});
  }

  void fail(std::vector<TraceResult<St>> &Results, Config C,
            const std::string &Msg) {
    finish(Results, OutcomeKind::Error, St::errorValue(Msg),
           std::move(C.State));
  }

  void step(Config C, std::vector<Config> &Work,
            std::vector<TraceResult<St>> &Results) {
    const Proc *Cur = P.find(C.CurProc);
    assert(Cur && "current procedure disappeared");
    if (C.I >= Cur->Body.size()) {
      fail(Results, std::move(C),
           "control fell off the end of procedure '" +
               std::string(C.CurProc.str()) + "'");
      return;
    }
    const Cmd &Command = Cur->Body[C.I];
    ++Stats.CmdsExecuted;

    switch (Command.Kind) {
    case CmdKind::Assign: {
      // [Assignment]: σ.(setVar_x ∘ eval_e)
      Result<typename St::ValueT> V = C.State.evalExpr(Command.E);
      if (!V) {
        fail(Results, std::move(C), V.error());
        return;
      }
      C.State.setVar(Command.X, V.take());
      ++C.I;
      Work.push_back(std::move(C));
      return;
    }

    case CmdKind::IfGoto: {
      // [IfGoto-True] / [IfGoto-False]: branch on assume(e) / assume(¬e).
      Result<typename St::ValueT> CondT = C.State.evalExpr(Command.E);
      if (!CondT) {
        fail(Results, std::move(C), CondT.error());
        return;
      }
      Result<typename St::ValueT> CondF =
          C.State.evalExpr(Expr::notE(Command.E));

      Result<std::optional<St>> TrueSt = C.State.assumeValue(*CondT);
      if (!TrueSt) {
        fail(Results, std::move(C), TrueSt.error());
        return;
      }
      std::optional<St> FalseSt;
      if (CondF) {
        Result<std::optional<St>> FS = C.State.assumeValue(*CondF);
        if (FS)
          FalseSt = std::move(*FS);
        // An error evaluating ¬e after e evaluated cleanly cannot happen
        // (Not of a Bool); a failed assume is simply an infeasible branch.
      }

      bool TookBoth = TrueSt->has_value() && FalseSt.has_value();
      if (TookBoth)
        ++Stats.Branches;

      if (FalseSt.has_value()) {
        Config FC = C;
        FC.State = std::move(*FalseSt);
        ++FC.I;
        Work.push_back(std::move(FC));
      }
      if (TrueSt->has_value()) {
        bool Backjump = Command.Target <= C.I;
        if (Backjump && ++C.Backjumps > Opts.LoopBound) {
          finish(Results, OutcomeKind::Bound,
                 St::errorValue("loop bound reached"), std::move(C.State));
          return;
        }
        C.State = std::move(**TrueSt);
        C.I = Command.Target;
        Work.push_back(std::move(C));
      }
      return;
    }

    case CmdKind::Call: {
      // [Call]: resolve callee, push frame, enter with store [y -> v].
      ++Stats.ProcCalls;
      Result<typename St::ValueT> Callee = C.State.evalExpr(Command.E);
      if (!Callee) {
        fail(Results, std::move(C), Callee.error());
        return;
      }
      Result<typename St::ValueT> Arg = C.State.evalExpr(Command.Arg);
      if (!Arg) {
        fail(Results, std::move(C), Arg.error());
        return;
      }
      std::optional<InternedString> F = C.State.asProcId(*Callee);
      if (!F) {
        fail(Results, std::move(C), "call target is not a procedure");
        return;
      }
      const Proc *PP = P.find(*F);
      if (!PP) {
        fail(Results, std::move(C),
             "call to unknown procedure '" + std::string(F->str()) + "'");
        return;
      }
      if (C.Stack.size() >= Opts.MaxCallDepth) {
        finish(Results, OutcomeKind::Bound,
               St::errorValue("call depth bound reached"),
               std::move(C.State));
        return;
      }
      // The frame records the *caller's* procedure, store, resume index
      // and loop budget, all restored on return.
      C.Stack.push_back(Frame<St>{C.CurProc, Command.X, C.State.getStore(),
                                  C.I + 1, C.Backjumps});
      typename St::StoreT Store;
      Store.set(PP->Param, Arg.take());
      C.State.setStore(std::move(Store));
      C.CurProc = *F;
      C.I = 0;
      C.Backjumps = 0;
      Work.push_back(std::move(C));
      return;
    }

    case CmdKind::Return: {
      Result<typename St::ValueT> V = C.State.evalExpr(Command.E);
      if (!V) {
        fail(Results, std::move(C), V.error());
        return;
      }
      if (C.Stack.empty()) {
        // [Top Return]: N(v).
        finish(Results, OutcomeKind::Return, V.take(), std::move(C.State));
        return;
      }
      // [Return]: restore caller store, bind the return variable.
      Frame<St> F = std::move(C.Stack.back());
      C.Stack.pop_back();
      C.State.setStore(std::move(F.SavedStore));
      C.State.setVar(F.RetVar, V.take());
      C.CurProc = F.ProcName;
      C.I = F.RetIdx;
      C.Backjumps = F.SavedBackjumps;
      Work.push_back(std::move(C));
      return;
    }

    case CmdKind::Fail: {
      // [Fail]: E(v).
      Result<typename St::ValueT> V = C.State.evalExpr(Command.E);
      if (!V) {
        fail(Results, std::move(C), V.error());
        return;
      }
      finish(Results, OutcomeKind::Error, V.take(), std::move(C.State));
      return;
    }

    case CmdKind::Vanish:
      finish(Results, OutcomeKind::Vanish, St::errorValue("vanish"),
             std::move(C.State));
      return;

    case CmdKind::Action: {
      // [Action]: σ.(setVar_x ∘ α ∘ eval_e).
      ++Stats.ActionCalls;
      Result<typename St::ValueT> Arg = C.State.evalExpr(Command.E);
      if (!Arg) {
        fail(Results, std::move(C), Arg.error());
        return;
      }
      Result<std::vector<StateBranch<St>>> Branches =
          C.State.execAction(Command.Action, *Arg);
      if (!Branches) {
        fail(Results, std::move(C), Branches.error());
        return;
      }
      if (Branches->size() > 1)
        Stats.Branches += Branches->size() - 1;
      for (StateBranch<St> &B : *Branches) {
        if (B.IsError) {
          finish(Results, OutcomeKind::Error, std::move(B.Ret),
                 std::move(B.State));
          continue;
        }
        Config NC = C;
        NC.State = std::move(B.State);
        NC.State.setVar(Command.X, std::move(B.Ret));
        ++NC.I;
        Work.push_back(std::move(NC));
      }
      return;
    }

    case CmdKind::USym: {
      // [uSym]: fresh uninterpreted symbol from the built-in allocator.
      typename St::ValueT V = C.State.allocUSym(Command.Site);
      C.State.setVar(Command.X, std::move(V));
      ++C.I;
      Work.push_back(std::move(C));
      return;
    }

    case CmdKind::ISym: {
      // [iSym]: fresh interpreted symbol (logical variable / scripted
      // value).
      typename St::ValueT V = C.State.allocISym(Command.Site);
      C.State.setVar(Command.X, std::move(V));
      ++C.I;
      Work.push_back(std::move(C));
      return;
    }
    }
    fail(Results, std::move(C), "unknown command kind");
  }

  const Prog &P;
  const EngineOptions &Opts;
  ExecStats &Stats;
};

} // namespace gillian

#endif // GILLIAN_ENGINE_INTERPRETER_H
