//===- tests/gil/ops_test.cpp ---------------------------------------------===//

#include "gil/ops.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace gillian;

namespace {

Value unop(UnOpKind Op, Value V) {
  Result<Value> R = evalUnOp(Op, V);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return R.ok() ? R.take() : Value();
}

Value binop(BinOpKind Op, Value A, Value B) {
  Result<Value> R = evalBinOp(Op, A, B);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return R.ok() ? R.take() : Value();
}

} // namespace

TEST(Ops, IntArithmeticIsExact) {
  EXPECT_EQ(binop(BinOpKind::Add, Value::intV(1) , Value::intV(2)).asInt(), 3);
  EXPECT_EQ(binop(BinOpKind::Mul, Value::intV(5), Value::intV(0)).asInt(), 0);
  // Exactness beyond double precision (2^60 + 1).
  int64_t Big = (1ll << 60) + 1;
  EXPECT_EQ(binop(BinOpKind::Add, Value::intV(Big), Value::intV(1)).asInt(),
            Big + 1);
}

TEST(Ops, MixedArithmeticWidensToNum) {
  Value R = binop(BinOpKind::Add, Value::intV(1), Value::numV(0.5));
  ASSERT_TRUE(R.isNum());
  EXPECT_DOUBLE_EQ(R.asNum(), 1.5);
}

TEST(Ops, IntDivisionTruncatesTowardZero) {
  EXPECT_EQ(binop(BinOpKind::Div, Value::intV(7), Value::intV(2)).asInt(), 3);
  EXPECT_EQ(binop(BinOpKind::Div, Value::intV(-7), Value::intV(2)).asInt(),
            -3);
  EXPECT_EQ(binop(BinOpKind::Div, Value::intV(7), Value::intV(-2)).asInt(),
            -3);
  EXPECT_EQ(binop(BinOpKind::Div, Value::intV(-7), Value::intV(-2)).asInt(),
            3);
}

TEST(Ops, DivisionByZeroFaults) {
  EXPECT_FALSE(evalBinOp(BinOpKind::Div, Value::intV(1), Value::intV(0)).ok());
  EXPECT_FALSE(evalBinOp(BinOpKind::Mod, Value::intV(1), Value::intV(0)).ok());
  // Num division by zero is IEEE, not a fault.
  Result<Value> R = evalBinOp(BinOpKind::Div, Value::numV(1), Value::numV(0));
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(std::isinf(R->asNum()));
}

TEST(Ops, ModMatchesCppTruncatedSemantics) {
  EXPECT_EQ(binop(BinOpKind::Mod, Value::intV(7), Value::intV(3)).asInt(), 1);
  EXPECT_EQ(binop(BinOpKind::Mod, Value::intV(-7), Value::intV(3)).asInt(),
            -1);
  EXPECT_EQ(binop(BinOpKind::Mod, Value::intV(7), Value::intV(-3)).asInt(), 1);
}

TEST(Ops, ComparisonOnNumbersAndStrings) {
  EXPECT_TRUE(binop(BinOpKind::Lt, Value::intV(1), Value::numV(1.5)).asBool());
  EXPECT_TRUE(binop(BinOpKind::Le, Value::intV(2), Value::intV(2)).asBool());
  EXPECT_TRUE(
      binop(BinOpKind::Lt, Value::strV("abc"), Value::strV("abd")).asBool());
  EXPECT_FALSE(
      evalBinOp(BinOpKind::Lt, Value::strV("a"), Value::intV(1)).ok());
}

TEST(Ops, EqIsTotalOnAllKinds) {
  EXPECT_TRUE(binop(BinOpKind::Eq, Value::symV("$a"), Value::symV("$a"))
                  .asBool());
  EXPECT_FALSE(binop(BinOpKind::Eq, Value::symV("$a"), Value::symV("$b"))
                   .asBool());
  EXPECT_FALSE(binop(BinOpKind::Eq, Value::intV(1), Value::numV(1.0))
                   .asBool());
}

TEST(Ops, BooleanOpsRequireBooleans) {
  EXPECT_TRUE(binop(BinOpKind::And, Value::boolV(true), Value::boolV(true))
                  .asBool());
  EXPECT_FALSE(evalBinOp(BinOpKind::And, Value::intV(1), Value::boolV(true))
                   .ok());
  EXPECT_FALSE(evalUnOp(UnOpKind::Not, Value::intV(0)).ok());
}

TEST(Ops, StringOperations) {
  EXPECT_EQ(binop(BinOpKind::StrCat, Value::strV("ab"), Value::strV("cd"))
                .asStr()
                .str(),
            "abcd");
  EXPECT_EQ(unop(UnOpKind::StrLen, Value::strV("abc")).asInt(), 3);
  EXPECT_EQ(binop(BinOpKind::StrNth, Value::strV("abc"), Value::intV(1))
                .asStr()
                .str(),
            "b");
  EXPECT_FALSE(
      evalBinOp(BinOpKind::StrNth, Value::strV("abc"), Value::intV(3)).ok());
}

TEST(Ops, ListOperations) {
  Value L = Value::listV({Value::intV(1), Value::intV(2)});
  EXPECT_EQ(unop(UnOpKind::ListLen, L).asInt(), 2);
  EXPECT_EQ(unop(UnOpKind::Head, L).asInt(), 1);
  EXPECT_EQ(unop(UnOpKind::Tail, L).asList().size(), 1u);
  EXPECT_EQ(binop(BinOpKind::ListNth, L, Value::intV(1)).asInt(), 2);
  EXPECT_FALSE(evalBinOp(BinOpKind::ListNth, L, Value::intV(-1)).ok());
  Value C = binop(BinOpKind::Cons, Value::intV(0), L);
  EXPECT_EQ(C.asList().size(), 3u);
  EXPECT_EQ(C.asList()[0].asInt(), 0);
  Value CC = binop(BinOpKind::ListConcat, L, L);
  EXPECT_EQ(CC.asList().size(), 4u);
  EXPECT_FALSE(evalUnOp(UnOpKind::Head, Value::listV({})).ok());
}

TEST(Ops, TypeOfReturnsTypes) {
  EXPECT_EQ(unop(UnOpKind::TypeOf, Value::intV(1)).asType(), GilType::Int);
  EXPECT_EQ(unop(UnOpKind::TypeOf, Value::listV({})).asType(), GilType::List);
  EXPECT_EQ(unop(UnOpKind::TypeOf, Value::typeV(GilType::Int)).asType(),
            GilType::Type);
}

TEST(Ops, Conversions) {
  EXPECT_DOUBLE_EQ(unop(UnOpKind::ToNum, Value::intV(3)).asNum(), 3.0);
  EXPECT_EQ(unop(UnOpKind::ToInt, Value::numV(-2.7)).asInt(), -2)
      << "to_int truncates toward zero";
  EXPECT_FALSE(evalUnOp(UnOpKind::ToInt, Value::numV(INFINITY)).ok());
  EXPECT_EQ(unop(UnOpKind::NumToStr, Value::intV(12)).asStr().str(), "12");
  EXPECT_DOUBLE_EQ(unop(UnOpKind::StrToNum, Value::strV("2.5")).asNum(), 2.5);
  EXPECT_FALSE(evalUnOp(UnOpKind::StrToNum, Value::strV("2x")).ok());
}

TEST(Ops, BitwiseAndShifts) {
  EXPECT_EQ(binop(BinOpKind::BitAnd, Value::intV(0b1100), Value::intV(0b1010))
                .asInt(),
            0b1000);
  EXPECT_EQ(binop(BinOpKind::BitXor, Value::intV(5), Value::intV(3)).asInt(),
            6);
  EXPECT_EQ(binop(BinOpKind::Shl, Value::intV(1), Value::intV(4)).asInt(), 16);
  EXPECT_EQ(binop(BinOpKind::Shr, Value::intV(-8), Value::intV(1)).asInt(),
            -4);
  EXPECT_FALSE(evalBinOp(BinOpKind::Shl, Value::intV(1), Value::intV(64)).ok());
  EXPECT_EQ(unop(UnOpKind::BitNot, Value::intV(0)).asInt(), -1);
}
