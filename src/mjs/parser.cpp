//===- mjs/parser.cpp -----------------------------------------------------===//

#include "mjs/parser.h"

#include "support/diagnostics.h"
#include "support/lexer.h"

#include <optional>

using namespace gillian;
using namespace gillian::mjs;

namespace {

JsExprPtr mk(JsExprKind K) {
  auto E = std::make_shared<JsExpr>();
  E->Kind = K;
  return E;
}

std::optional<std::string> symbKind(const std::string &Callee) {
  if (Callee == "symb_number") return "number";
  if (Callee == "symb_string") return "string";
  if (Callee == "symb_bool") return "bool";
  if (Callee == "symb_any") return "any";
  return std::nullopt;
}

class MjsParser {
public:
  explicit MjsParser(std::string_view Src) : Toks(tokenize(Src)) {}

  Result<JsProgram> run() {
    JsProgram P;
    while (!cur().is(TokenKind::Eof)) {
      Result<JsFunc> F = parseFunction();
      if (!F)
        return Err(F.error());
      P.Funcs.push_back(F.take());
    }
    return P;
  }

private:
  std::vector<Token> Toks;
  size_t Pos = 0;

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t A = 1) const {
    size_t I = Pos + A;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  void bump() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }
  Err here(const std::string &Msg) { return Err(diagAtToken(cur(), Msg)); }
  bool eatPunct(std::string_view P) {
    if (!cur().isPunct(P))
      return false;
    bump();
    return true;
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  Result<JsExprPtr> parseExpr() { return parseOr(); }

  Result<JsExprPtr> parseOr() {
    Result<JsExprPtr> L = parseAnd();
    if (!L)
      return L;
    JsExprPtr E = L.take();
    while (cur().isPunct("||")) {
      bump();
      Result<JsExprPtr> R = parseAnd();
      if (!R)
        return R;
      JsExprPtr N = mk(JsExprKind::Binary);
      N->BOp = JsBinOp::Or;
      N->Lhs = E;
      N->Rhs = R.take();
      E = N;
    }
    return E;
  }

  Result<JsExprPtr> parseAnd() {
    Result<JsExprPtr> L = parseEquality();
    if (!L)
      return L;
    JsExprPtr E = L.take();
    while (cur().isPunct("&&")) {
      bump();
      Result<JsExprPtr> R = parseEquality();
      if (!R)
        return R;
      JsExprPtr N = mk(JsExprKind::Binary);
      N->BOp = JsBinOp::And;
      N->Lhs = E;
      N->Rhs = R.take();
      E = N;
    }
    return E;
  }

  Result<JsExprPtr> parseEquality() {
    Result<JsExprPtr> L = parseRelational();
    if (!L)
      return L;
    JsExprPtr E = L.take();
    while (cur().isPunct("==") || cur().isPunct("===") ||
           cur().isPunct("!=") || cur().isPunct("!==")) {
      bool Neq = cur().Text[0] == '!';
      bump();
      Result<JsExprPtr> R = parseRelational();
      if (!R)
        return R;
      JsExprPtr N = mk(JsExprKind::Binary);
      N->BOp = Neq ? JsBinOp::Ne : JsBinOp::Eq;
      N->Lhs = E;
      N->Rhs = R.take();
      E = N;
    }
    return E;
  }

  Result<JsExprPtr> parseRelational() {
    Result<JsExprPtr> L = parseAdditive();
    if (!L)
      return L;
    JsExprPtr E = L.take();
    while (cur().isPunct("<") || cur().isPunct("<=") || cur().isPunct(">") ||
           cur().isPunct(">=")) {
      JsBinOp Op = cur().Text == "<"    ? JsBinOp::Lt
                   : cur().Text == "<=" ? JsBinOp::Le
                   : cur().Text == ">"  ? JsBinOp::Gt
                                        : JsBinOp::Ge;
      bump();
      Result<JsExprPtr> R = parseAdditive();
      if (!R)
        return R;
      JsExprPtr N = mk(JsExprKind::Binary);
      N->BOp = Op;
      N->Lhs = E;
      N->Rhs = R.take();
      E = N;
    }
    return E;
  }

  Result<JsExprPtr> parseAdditive() {
    Result<JsExprPtr> L = parseMultiplicative();
    if (!L)
      return L;
    JsExprPtr E = L.take();
    while (cur().isPunct("+") || cur().isPunct("-")) {
      JsBinOp Op = cur().Text == "+" ? JsBinOp::Add : JsBinOp::Sub;
      bump();
      Result<JsExprPtr> R = parseMultiplicative();
      if (!R)
        return R;
      JsExprPtr N = mk(JsExprKind::Binary);
      N->BOp = Op;
      N->Lhs = E;
      N->Rhs = R.take();
      E = N;
    }
    return E;
  }

  Result<JsExprPtr> parseMultiplicative() {
    Result<JsExprPtr> L = parseUnary();
    if (!L)
      return L;
    JsExprPtr E = L.take();
    while (cur().isPunct("*") || cur().isPunct("/") || cur().isPunct("%")) {
      JsBinOp Op = cur().Text == "*"   ? JsBinOp::Mul
                   : cur().Text == "/" ? JsBinOp::Div
                                       : JsBinOp::Mod;
      bump();
      Result<JsExprPtr> R = parseUnary();
      if (!R)
        return R;
      JsExprPtr N = mk(JsExprKind::Binary);
      N->BOp = Op;
      N->Lhs = E;
      N->Rhs = R.take();
      E = N;
    }
    return E;
  }

  Result<JsExprPtr> parseUnary() {
    if (cur().isPunct("!") || cur().isPunct("-") ||
        cur().isIdent("typeof")) {
      JsUnOp Op = cur().isPunct("!")   ? JsUnOp::Not
                  : cur().isPunct("-") ? JsUnOp::Neg
                                       : JsUnOp::TypeOf;
      bump();
      Result<JsExprPtr> C = parseUnary();
      if (!C)
        return C;
      JsExprPtr N = mk(JsExprKind::Unary);
      N->UOp = Op;
      N->Lhs = C.take();
      return N;
    }
    return parsePostfix();
  }

  Result<JsExprPtr> parsePostfix() {
    Result<JsExprPtr> P = parsePrimary();
    if (!P)
      return P;
    JsExprPtr E = P.take();
    while (true) {
      if (cur().isPunct(".")) {
        bump();
        if (!cur().is(TokenKind::Ident))
          return here("expected property name after '.'");
        JsExprPtr N = mk(JsExprKind::Member);
        N->Lhs = E;
        N->StrVal = cur().Text;
        bump();
        E = N;
        continue;
      }
      if (cur().isPunct("[")) {
        bump();
        Result<JsExprPtr> I = parseExpr();
        if (!I)
          return I;
        if (!eatPunct("]"))
          return here("expected ']'");
        JsExprPtr N = mk(JsExprKind::Member);
        N->Lhs = E;
        N->Rhs = I.take();
        E = N;
        continue;
      }
      return E;
    }
  }

  Result<JsExprPtr> parsePrimary() {
    const Token &T = cur();
    if (T.is(TokenKind::Int)) {
      JsExprPtr E = mk(JsExprKind::Num);
      E->NumVal = static_cast<double>(T.IntVal);
      bump();
      return E;
    }
    if (T.is(TokenKind::Float)) {
      JsExprPtr E = mk(JsExprKind::Num);
      E->NumVal = T.FloatVal;
      bump();
      return E;
    }
    if (T.is(TokenKind::String)) {
      JsExprPtr E = mk(JsExprKind::Str);
      E->StrVal = T.Text;
      bump();
      return E;
    }
    if (T.isIdent("true") || T.isIdent("false")) {
      JsExprPtr E = mk(JsExprKind::Bool);
      E->BoolVal = T.Text == "true";
      bump();
      return E;
    }
    if (T.isIdent("undefined")) {
      bump();
      return mk(JsExprKind::Undefined);
    }
    if (T.isIdent("null")) {
      bump();
      return mk(JsExprKind::Null);
    }
    if (T.isPunct("(")) {
      bump();
      Result<JsExprPtr> E = parseExpr();
      if (!E)
        return E;
      if (!eatPunct(")"))
        return here("expected ')'");
      return E;
    }
    if (T.isPunct("{"))
      return parseObjectLiteral();
    if (T.isPunct("["))
      return parseArrayLiteral();
    if (T.is(TokenKind::Ident)) {
      std::string Name = T.Text;
      if (peek().isPunct("(")) {
        bump();
        bump();
        JsExprPtr E = mk(JsExprKind::Call);
        E->Callee = Name;
        if (!cur().isPunct(")")) {
          while (true) {
            Result<JsExprPtr> A = parseExpr();
            if (!A)
              return A;
            E->Args.push_back(A.take());
            if (eatPunct(","))
              continue;
            break;
          }
        }
        if (!eatPunct(")"))
          return here("expected ')'");
        return E;
      }
      bump();
      JsExprPtr E = mk(JsExprKind::Var);
      E->StrVal = Name;
      return E;
    }
    return here("expected an expression");
  }

  Result<JsExprPtr> parseObjectLiteral() {
    bump(); // '{'
    JsExprPtr E = mk(JsExprKind::Object);
    if (!cur().isPunct("}")) {
      while (true) {
        if (!cur().is(TokenKind::Ident) && !cur().is(TokenKind::String))
          return here("expected property name");
        std::string P = cur().Text;
        bump();
        if (!eatPunct(":"))
          return here("expected ':'");
        Result<JsExprPtr> V = parseExpr();
        if (!V)
          return Err(V.error());
        E->Props.emplace_back(P, V.take());
        if (eatPunct(","))
          continue;
        break;
      }
    }
    if (!eatPunct("}"))
      return here("expected '}'");
    return E;
  }

  Result<JsExprPtr> parseArrayLiteral() {
    bump(); // '['
    JsExprPtr E = mk(JsExprKind::Array);
    if (!cur().isPunct("]")) {
      while (true) {
        Result<JsExprPtr> V = parseExpr();
        if (!V)
          return V;
        E->Args.push_back(V.take());
        if (eatPunct(","))
          continue;
        break;
      }
    }
    if (!eatPunct("]"))
      return here("expected ']'");
    return E;
  }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  Result<std::vector<JsStmt>> parseBlock() {
    if (!eatPunct("{"))
      return here("expected '{'");
    std::vector<JsStmt> Out;
    while (!cur().isPunct("}")) {
      if (cur().is(TokenKind::Eof))
        return here("unterminated block");
      Result<JsStmt> S = parseStmt();
      if (!S)
        return Err(S.error());
      Out.push_back(S.take());
    }
    bump();
    return Out;
  }

  Result<JsStmt> parseStmt() {
    if (cur().isIdent("var"))
      return finishSimple(parseVarDecl(), ";");
    if (cur().isIdent("if"))
      return parseIf();
    if (cur().isIdent("while"))
      return parseWhile();
    if (cur().isIdent("for"))
      return parseFor();
    if (cur().isIdent("return")) {
      bump();
      JsStmt S;
      S.Kind = JsStmtKind::Return;
      if (!cur().isPunct(";")) {
        Result<JsExprPtr> E = parseExpr();
        if (!E)
          return Err(E.error());
        S.E = E.take();
      } else {
        S.E = mk(JsExprKind::Undefined);
      }
      if (!eatPunct(";"))
        return here("expected ';'");
      return S;
    }
    if (cur().isIdent("delete")) {
      bump();
      Result<JsExprPtr> E = parsePostfix();
      if (!E)
        return Err(E.error());
      if ((*E)->Kind != JsExprKind::Member)
        return here("'delete' requires a property access");
      JsStmt S;
      S.Kind = JsStmtKind::Delete;
      S.Obj = (*E)->Lhs;
      S.Idx = (*E)->Rhs;
      S.Name = (*E)->StrVal;
      if (!eatPunct(";"))
        return here("expected ';'");
      return S;
    }
    if (cur().isIdent("Assume") || cur().isIdent("Assert")) {
      bool IsAssume = cur().Text == "Assume";
      bump();
      if (!eatPunct("("))
        return here("expected '('");
      Result<JsExprPtr> E = parseExpr();
      if (!E)
        return Err(E.error());
      if (!eatPunct(")") || !eatPunct(";"))
        return here("expected ');'");
      JsStmt S;
      S.Kind = IsAssume ? JsStmtKind::Assume : JsStmtKind::Assert;
      S.E = E.take();
      return S;
    }
    return finishSimple(parseExprOrAssign(), ";");
  }

  /// Consumes the trailing terminator of a simple statement.
  Result<JsStmt> finishSimple(Result<JsStmt> S, std::string_view Term) {
    if (!S)
      return S;
    if (!eatPunct(Term))
      return here("expected '" + std::string(Term) + "'");
    return S;
  }

  /// `var x = e` (no terminator), recognising symbolic-input intrinsics.
  Result<JsStmt> parseVarDecl() {
    bump(); // var
    if (!cur().is(TokenKind::Ident))
      return here("expected variable name");
    JsStmt S;
    S.Name = cur().Text;
    bump();
    if (!eatPunct("="))
      return here("expected '=' (MJS requires initialised declarations)");
    if (cur().is(TokenKind::Ident) && peek().isPunct("(")) {
      if (auto K = symbKind(cur().Text)) {
        bump();
        bump();
        if (!eatPunct(")"))
          return here("expected ')'");
        S.Kind = JsStmtKind::SymbInput;
        S.SymbKind = *K;
        return S;
      }
    }
    Result<JsExprPtr> E = parseExpr();
    if (!E)
      return Err(E.error());
    S.Kind = JsStmtKind::VarDecl;
    S.E = E.take();
    return S;
  }

  /// Expression-led statements (no terminator): assignment, member
  /// assignment, or bare call.
  Result<JsStmt> parseExprOrAssign() {
    Result<JsExprPtr> L = parseExpr();
    if (!L)
      return Err(L.error());
    JsExprPtr E = L.take();
    if (cur().isPunct("=")) {
      bump();
      Result<JsExprPtr> R = parseExpr();
      if (!R)
        return Err(R.error());
      JsStmt S;
      if (E->Kind == JsExprKind::Var) {
        S.Kind = JsStmtKind::Assign;
        S.Name = E->StrVal;
        S.E = R.take();
        return S;
      }
      if (E->Kind == JsExprKind::Member) {
        S.Kind = JsStmtKind::MemberSet;
        S.Obj = E->Lhs;
        S.Idx = E->Rhs;
        S.Name = E->StrVal;
        S.Val = R.take();
        return S;
      }
      return here("invalid assignment target");
    }
    JsStmt S;
    S.Kind = JsStmtKind::ExprStmt;
    S.E = E;
    return S;
  }

  Result<JsStmt> parseIf() {
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    Result<JsExprPtr> C = parseExpr();
    if (!C)
      return Err(C.error());
    if (!eatPunct(")"))
      return here("expected ')'");
    JsStmt S;
    S.Kind = JsStmtKind::If;
    S.E = C.take();
    Result<std::vector<JsStmt>> Then = parseBlock();
    if (!Then)
      return Err(Then.error());
    S.Then = Then.take();
    if (cur().isIdent("else")) {
      bump();
      if (cur().isIdent("if")) {
        // else-if chain: wrap the nested if as a one-statement else block.
        Result<JsStmt> Nested = parseIf();
        if (!Nested)
          return Nested;
        S.Else.push_back(Nested.take());
        return S;
      }
      Result<std::vector<JsStmt>> Else = parseBlock();
      if (!Else)
        return Err(Else.error());
      S.Else = Else.take();
    }
    return S;
  }

  Result<JsStmt> parseWhile() {
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    Result<JsExprPtr> C = parseExpr();
    if (!C)
      return Err(C.error());
    if (!eatPunct(")"))
      return here("expected ')'");
    JsStmt S;
    S.Kind = JsStmtKind::While;
    S.E = C.take();
    Result<std::vector<JsStmt>> Body = parseBlock();
    if (!Body)
      return Err(Body.error());
    S.Then = Body.take();
    return S;
  }

  Result<JsStmt> parseFor() {
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    JsStmt S;
    S.Kind = JsStmtKind::For;
    if (!cur().isPunct(";")) {
      Result<JsStmt> Init = cur().isIdent("var") ? parseVarDecl()
                                                 : parseExprOrAssign();
      if (!Init)
        return Init;
      S.Init.push_back(Init.take());
    }
    if (!eatPunct(";"))
      return here("expected ';'");
    if (!cur().isPunct(";")) {
      Result<JsExprPtr> C = parseExpr();
      if (!C)
        return Err(C.error());
      S.E = C.take();
    } else {
      JsExprPtr T = mk(JsExprKind::Bool);
      T->BoolVal = true;
      S.E = T;
    }
    if (!eatPunct(";"))
      return here("expected ';'");
    if (!cur().isPunct(")")) {
      Result<JsStmt> Step = parseExprOrAssign();
      if (!Step)
        return Step;
      S.Step.push_back(Step.take());
    }
    if (!eatPunct(")"))
      return here("expected ')'");
    Result<std::vector<JsStmt>> Body = parseBlock();
    if (!Body)
      return Err(Body.error());
    S.Then = Body.take();
    return S;
  }

  Result<JsFunc> parseFunction() {
    if (!cur().isIdent("function"))
      return here("expected 'function'");
    bump();
    if (!cur().is(TokenKind::Ident))
      return here("expected function name");
    JsFunc F;
    F.Name = cur().Text;
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    if (!cur().isPunct(")")) {
      while (true) {
        if (!cur().is(TokenKind::Ident))
          return here("expected parameter name");
        F.Params.push_back(cur().Text);
        bump();
        if (eatPunct(","))
          continue;
        break;
      }
    }
    if (!eatPunct(")"))
      return here("expected ')'");
    Result<std::vector<JsStmt>> Body = parseBlock();
    if (!Body)
      return Err(Body.error());
    F.Body = Body.take();
    return F;
  }
};

} // namespace

Result<JsProgram> gillian::mjs::parseMjs(std::string_view Source) {
  return MjsParser(Source).run();
}
