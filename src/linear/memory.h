//===- linear/memory.h - Wasm-style linear memory --------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fourth memory-model instantiation: a Wasm-style flat linear memory,
/// written entirely as a composition of the memlib combinators — this one
/// file is the whole model (see DESIGN.md §4h and the README quickstart
/// "add your own language in one file").
///
/// The state is a size register (a Cell shape) next to a sparse cell array
/// (a PMap shape over integer offsets, zero-initialised like Wasm memory).
/// All branching comes from the kit: bounds checks are
/// BranchCtx::checkOrError splits, symbolic-offset loads and stores run
/// the shared resolveAliases loop with linear's miss policies (load
/// misses read 0; store misses extend at the queried offset), and a
/// symbolic grow amount is the structured memlib::symbolicSizeError.
///
/// Actions (the Wasm memory instruction core):
///   grow [d]      — extend the memory by d cells; returns the old size.
///                   Negative d and growing by a symbolic amount are
///                   faults (the latter an engine-level Err, as for MC
///                   alloc).
///   msize []      — current size in cells.
///   load [i]      — cell at offset i; 0 when never written;
///                   out-of-bounds is a fault.
///   store [i, v]  — write v at offset i; out-of-bounds is a fault.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_LINEAR_MEMORY_H
#define GILLIAN_LINEAR_MEMORY_H

#include "engine/action_args.h"
#include "engine/memlib/memlib.h"
#include "engine/state.h"
#include "obs/action_counters.h"
#include "solver/model.h"
#include "solver/simplifier.h"
#include "support/cow_map.h"

#include <string>

namespace gillian::linear {

// Action names.
inline InternedString actGrow() { return InternedString::get("grow"); }
inline InternedString actMSize() { return InternedString::get("msize"); }
inline InternedString actLoad() { return InternedString::get("load"); }
inline InternedString actStore() { return InternedString::get("store"); }

//===----------------------------------------------------------------------===//
// Concrete linear memory
//===----------------------------------------------------------------------===//

class LinearCMem {
public:
  Result<Value> execAction(InternedString Act, const Value &Arg) {
    if (Act == actGrow()) {
      Result<std::vector<Value>> A = splitArgs(Arg, 1);
      if (!A)
        return Err(A.error());
      if (!(*A)[0].isInt())
        return Err(memlib::symbolicSizeError("grow", Expr::lit((*A)[0])));
      int64_t D = (*A)[0].asInt();
      if (D < 0)
        return Err("UB: grow by negative size");
      int64_t Old = Size;
      Size += D;
      return Value::intV(Old);
    }
    if (Act == actMSize()) {
      Result<std::vector<Value>> A = splitArgs(Arg, 0);
      if (!A)
        return Err(A.error());
      return Value::intV(Size);
    }
    if (Act == actLoad() || Act == actStore()) {
      bool IsStore = Act == actStore();
      Result<std::vector<Value>> A = splitArgs(Arg, IsStore ? 2 : 1);
      if (!A)
        return Err(A.error());
      if (!(*A)[0].isInt())
        return Err("memory fault: non-integer offset " + (*A)[0].toString());
      int64_t Off = (*A)[0].asInt();
      if (Off < 0 || Off >= Size)
        return Err(std::string("UB: out-of-bounds ") +
                   (IsStore ? "store" : "load"));
      if (IsStore) {
        Cells.set(Off, (*A)[1]);
        return (*A)[1];
      }
      const Value *V = Cells.lookup(Off);
      return V ? *V : Value::intV(0); // zero-initialised, as in Wasm
    }
    return Err("unknown linear action '" + std::string(Act.str()) + "'");
  }

  int64_t size() const { return Size; }
  const CowMap<int64_t, Value> &cells() const { return Cells; }
  void setCell(int64_t Off, Value V) { Cells.set(Off, std::move(V)); }
  void setSize(int64_t S) { Size = S; }

  std::string toString() const {
    return "size=" + std::to_string(Size) + " " +
           memlib::printEntries(Cells, [](int64_t Off, const Value &V) {
             return std::to_string(Off) + " -> " + V.toString();
           });
  }

private:
  int64_t Size = 0;
  CowMap<int64_t, Value> Cells;
};

//===----------------------------------------------------------------------===//
// Symbolic linear memory
//===----------------------------------------------------------------------===//

class LinearSMem {
public:
  using CellMap = CowMap<Expr, Expr, ExprOrdering>;

  Result<std::vector<SymActionBranch<LinearSMem>>>
  execAction(InternedString Act, const Expr &Arg, const PathCondition &PC,
             Solver &S) const {
    obs::ActionCounters::bump("linear", Act);
    memlib::BranchCtx<LinearSMem> C(*this, PC, S);

    if (Act == actGrow()) {
      Result<std::vector<Expr>> A = splitArgsE(Arg, 1);
      if (!A)
        return Err(A.error());
      Expr D = simplify((*A)[0]);
      // Growing by a symbolic amount would make the size register
      // symbolic; like MC alloc, this is the kit's structured
      // symbolic-size fault.
      if (!D.isLit() || !D.litValue().isInt())
        return Err(memlib::symbolicSizeError("grow", D));
      if (D.litValue().asInt() < 0) {
        C.error("UB: grow by negative size");
        return C.Out;
      }
      LinearSMem Next = *this;
      Next.Size += D.litValue().asInt();
      C.ok(std::move(Next), Expr::intE(Size));
      return C.Out;
    }

    if (Act == actMSize()) {
      Result<std::vector<Expr>> A = splitArgsE(Arg, 0);
      if (!A)
        return Err(A.error());
      C.ok(*this, Expr::intE(Size));
      return C.Out;
    }

    if (Act == actLoad() || Act == actStore()) {
      bool IsStore = Act == actStore();
      Result<std::vector<Expr>> A = splitArgsE(Arg, IsStore ? 2 : 1);
      if (!A)
        return Err(A.error());
      Expr Off = simplify((*A)[0]);
      const char *What = IsStore ? "store" : "load";
      // Bounds: 0 <= i < size. The size register is concrete, so this is
      // one checkOrError split.
      Expr InBounds = Expr::andE(Expr::le(Expr::intE(0), Off),
                                 Expr::lt(Off, Expr::intE(Size)));
      C.checkOrError(
          InBounds, Expr::boolE(true),
          std::string("UB: out-of-bounds ") + What, [&](Expr U) {
            if (IsStore) {
              const Expr &V = (*A)[1];
              memlib::resolveAliases(
                  C, Cells, Off, U, {},
                  [&](const Expr &Key, const Expr &, const Expr &Taken,
                      bool) {
                    LinearSMem Next = *this;
                    Next.Cells.set(Key, V);
                    C.ok(std::move(Next), V, Taken);
                  },
                  [&](const Expr &Miss) {
                    // [S-Mutate-Absent]: extend at the queried offset.
                    LinearSMem Next = *this;
                    Next.Cells.set(Off, V);
                    C.ok(std::move(Next), V, Miss);
                  });
            } else {
              memlib::resolveAliases(
                  C, Cells, Off, U, {},
                  [&](const Expr &, const Expr &V, const Expr &Taken,
                      bool) { C.ok(*this, V, Taken); },
                  [&](const Expr &Miss) {
                    // Never-written memory reads as 0 (Wasm
                    // zero-initialisation) — a miss is not a fault.
                    C.ok(*this, Expr::intE(0), Miss);
                  });
            }
          });
      return C.Out;
    }

    return Err("unknown linear action '" + std::string(Act.str()) + "'");
  }

  int64_t size() const { return Size; }
  const CellMap &cells() const { return Cells; }
  void setCell(const Expr &Off, Expr V) { Cells.set(Off, std::move(V)); }
  void setSize(int64_t S) { Size = S; }

  std::string toString() const {
    return "size=" + std::to_string(Size) + " " +
           memlib::printEntries(Cells, [](const Expr &Off, const Expr &V) {
             return Off.toString() + " -> " + V.toString();
           });
  }

  friend bool operator==(const LinearSMem &A, const LinearSMem &B) {
    return A.Size == B.Size && A.Cells == B.Cells;
  }

private:
  int64_t Size = 0;
  CellMap Cells;
};

static_assert(ConcreteMemoryModel<LinearCMem>);
static_assert(SymbolicMemoryModel<LinearSMem>);

/// Memory interpretation I_L (Def 3.7 instance): offsets evaluate to
/// distinct in-bounds integers, cells evaluate pointwise.
inline Result<LinearCMem> interpretMemory(const Model &Eps,
                                          const LinearSMem &SMem) {
  LinearCMem Out;
  Out.setSize(SMem.size());
  for (const auto &[OffE, VE] : SMem.cells()) {
    Result<Value> Off = Eps.eval(OffE);
    if (!Off)
      return Err("interpretation failure on offset " + OffE.toString() +
                 ": " + Off.error());
    if (!Off->isInt())
      return Err("offset " + OffE.toString() +
                 " interprets to a non-integer " + Off->toString());
    if (Off->asInt() < 0 || Off->asInt() >= SMem.size())
      return Err("offset " + Off->toString() +
                 " interprets outside the memory");
    if (Out.cells().contains(Off->asInt()))
      return Err("offsets collapse under the model: " + Off->toString());
    Result<Value> V = Eps.eval(VE);
    if (!V)
      return Err("interpretation failure on " + VE.toString() + ": " +
                 V.error());
    Out.setCell(Off->asInt(), V.take());
  }
  return Out;
}

} // namespace gillian::linear

#endif // GILLIAN_LINEAR_MEMORY_H
