file(REMOVE_RECURSE
  "CMakeFiles/gillian_engine.dir/engine.cpp.o"
  "CMakeFiles/gillian_engine.dir/engine.cpp.o.d"
  "libgillian_engine.a"
  "libgillian_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gillian_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
