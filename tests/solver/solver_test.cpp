//===- tests/solver/solver_test.cpp ---------------------------------------===//

#include "solver/solver.h"

#include "gil/parser.h"
#include "solver/simplifier.h"
#include "solver/z3_backend.h"

#include <gtest/gtest.h>

using namespace gillian;

namespace {

PathCondition pc(std::initializer_list<const char *> Conjuncts) {
  PathCondition P;
  for (const char *C : Conjuncts) {
    Result<Expr> E = parseGilExpr(C);
    EXPECT_TRUE(E.ok()) << (E.ok() ? "" : E.error());
    P.add(simplify(*E));
  }
  return P;
}

} // namespace

TEST(PathConditionT, FlattensAndDeduplicates) {
  PathCondition P;
  Result<Expr> E = parseGilExpr("(#a && #b) && #a");
  ASSERT_TRUE(E.ok());
  P.add(*E);
  EXPECT_EQ(P.size(), 2u);
  P.add(parseGilExpr("#b").take());
  EXPECT_EQ(P.size(), 2u) << "duplicate conjuncts are skipped";
}

TEST(PathConditionT, FalseCollapses) {
  PathCondition P = pc({"#a"});
  P.add(Expr::boolE(false));
  EXPECT_TRUE(P.isTriviallyFalse());
  EXPECT_EQ(P.size(), 0u);
  EXPECT_EQ(P.toString(), "false");
}

TEST(PathConditionT, ContainsIsRestrictionOrder) {
  PathCondition Weak = pc({"#a"});
  PathCondition Strong = pc({"#a", "#b"});
  EXPECT_TRUE(Strong.contains(Weak));
  EXPECT_FALSE(Weak.contains(Strong));
  EXPECT_TRUE(Weak.contains(PathCondition()));
}

TEST(PathConditionT, EqualityAndHashAreOrderInsensitive) {
  PathCondition A = pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 9"});
  PathCondition B = pc({"#x < 9", "typeof(#x) == ^Int", "0 <= #x"});
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_EQ(A.toString(), B.toString()) << "canonical rendering";
  // Supersets still differ.
  PathCondition C = B;
  C.add(parseGilExpr("#y == 1").take());
  EXPECT_FALSE(A == C);
}

TEST(PathConditionT, ConjunctsAreCanonicallySorted) {
  PathCondition A = pc({"#b == 2", "#a == 1", "#c == 3"});
  PathCondition B = pc({"#c == 3", "#b == 2", "#a == 1"});
  ASSERT_EQ(A.size(), 3u);
  EXPECT_EQ(A.conjuncts(), B.conjuncts());
  ExprOrdering Less;
  for (size_t I = 1; I < A.size(); ++I)
    EXPECT_FALSE(Less(A.conjuncts()[I], A.conjuncts()[I - 1]));
}

TEST(PathConditionT, ContainsOnLargePermutedSets) {
  // The sorted canonical form makes containment a merge-walk; check it
  // against permuted insertion orders and strict sub/supersets.
  std::vector<std::string> Conjs;
  for (int I = 0; I < 40; ++I)
    Conjs.push_back("#v" + std::to_string(I) + " < " + std::to_string(I));
  PathCondition Full, Sub;
  for (int I = 39; I >= 0; --I)
    Full.add(parseGilExpr(Conjs[static_cast<size_t>(I)].c_str()).take());
  for (int I = 0; I < 40; I += 2)
    Sub.add(parseGilExpr(Conjs[static_cast<size_t>(I)].c_str()).take());
  EXPECT_TRUE(Full.contains(Sub));
  EXPECT_FALSE(Sub.contains(Full));
  EXPECT_TRUE(Full.contains(Full));
}

TEST(SolverFacade, TrivialAnswers) {
  Solver S;
  EXPECT_EQ(S.checkSat(PathCondition()), SatResult::Sat);
  PathCondition F;
  F.add(Expr::boolE(false));
  EXPECT_EQ(S.checkSat(F), SatResult::Unsat);
  EXPECT_EQ(S.stats().TrivialAnswers, 2u);
}

TEST(SolverFacade, SyntacticLayerDecidesCheapUnsat) {
  Solver S;
  EXPECT_EQ(S.checkSat(pc({"#x == 1", "#x == 2"})), SatResult::Unsat);
  EXPECT_GE(S.stats().SyntacticUnsat, 1u);
  EXPECT_EQ(S.stats().Z3Calls, 0u) << "Z3 must not be consulted";
}

TEST(SolverFacade, CacheHitsOnRepeat) {
  Solver S;
  PathCondition P = pc({"typeof(#x) == ^Int", "#x < 3", "5 < #x"});
  SatResult R1 = S.checkSat(P);
  SatResult R2 = S.checkSat(P);
  EXPECT_EQ(R1, R2);
  EXPECT_GE(S.stats().CacheHits, 1u);
}

TEST(SolverFacade, CacheDisabledInLegacyConfig) {
  Solver S(SolverOptions::legacyJaVerT2());
  PathCondition P = pc({"typeof(#x) == ^Int", "#x < 3"});
  S.checkSat(P);
  S.checkSat(P);
  EXPECT_EQ(S.stats().CacheHits, 0u);
  EXPECT_EQ(S.stats().SliceCacheHits, 0u);
}

TEST(SolverFacade, PermutedConjunctOrderIsACacheHit) {
  // The seed cache keyed on the insertion-ordered conjunct vector, so the
  // same constraint set reached via two branch orders missed. Canonical
  // keys make it hit.
  Solver S;
  PathCondition Fwd = pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 3"});
  PathCondition Rev = pc({"#x < 3", "0 <= #x", "typeof(#x) == ^Int"});
  SatResult R1 = S.checkSat(Fwd);
  uint64_t HitsBefore = S.stats().CacheHits;
  SatResult R2 = S.checkSat(Rev);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(S.stats().CacheHits, HitsBefore + 1)
      << "permuted insertion order must share the canonical cache entry";
}

TEST(SolverFacade, UnknownIsNeverCached) {
  // Regression: the seed permanently cached Unknown, so a query the
  // syntactic core punted on was never retried even when a stronger
  // backend could decide it. With Z3 off, "#x * 2 == 7" stays Unknown
  // (opaque product term; proposed models fail verification) — but it
  // must be *recomputed*, not served from the cache.
  SolverOptions NoZ3;
  NoZ3.UseZ3 = false;
  Solver S(NoZ3);
  PathCondition P =
      pc({"typeof(#x) == ^Int", "0 <= #x", "#x <= 10", "#x * 2 == 7"});
  EXPECT_EQ(S.checkSat(P), SatResult::Unknown);
  EXPECT_EQ(S.checkSat(P), SatResult::Unknown);
  EXPECT_EQ(S.stats().Queries, 2u);
  EXPECT_EQ(S.stats().CacheHits, 0u) << "Unknown must not be cached";
  EXPECT_EQ(S.stats().SliceCacheHits, 0u) << "not even at slice level";
  EXPECT_EQ(S.stats().Unknown, 2u) << "second query re-ran the layers";

  // The identical query on a Z3-backed solver decides Unsat — the verdict
  // a poisoned cache would have masked forever.
  if (z3Available()) {
    Solver Full;
    EXPECT_EQ(Full.checkSat(P), SatResult::Unsat);
  }
}

TEST(SolverFacade, DecidedSliceIsCachedNextToUnknownSlice) {
  // In a sliced query with one undecidable and one decidable component,
  // the decidable slice's verdict is banked even though the whole query
  // stays Unknown (and is itself not cached).
  SolverOptions NoZ3;
  NoZ3.UseZ3 = false;
  Solver S(NoZ3);
  PathCondition P = pc({"typeof(#x) == ^Int", "0 <= #x", "#x <= 10",
                        "#x * 2 == 7", "typeof(#y) == ^Int", "#y == 4"});
  EXPECT_EQ(S.checkSat(P), SatResult::Unknown);
  uint64_t SliceHits = S.stats().SliceCacheHits;
  EXPECT_EQ(S.checkSat(P), SatResult::Unknown);
  EXPECT_GT(S.stats().SliceCacheHits, SliceHits)
      << "the #y slice (Sat) must be answered from the slice cache";
  EXPECT_EQ(S.stats().CacheHits, 0u)
      << "the Unknown whole-query verdict must not be cached";
}

TEST(SolverFacade, VerifiedModelSatisfiesPC) {
  Solver S;
  PathCondition P = pc({"typeof(#x) == ^Int", "3 <= #x", "#x <= 3",
                        "typeof(#s) == ^Str", "slen(#s) == 0"});
  std::optional<Model> M = S.verifiedModel(P);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->satisfies(P));
  EXPECT_EQ(M->lookup(InternedString::get("#x"))->asInt(), 3);
}

TEST(SolverFacade, NoModelForUnsat) {
  Solver S;
  EXPECT_FALSE(S.verifiedModel(pc({"#x == 1", "#x == 2"})).has_value());
}

// --- Z3-backed checks (skipped when the backend is absent) --------------

class Z3Test : public ::testing::Test {
protected:
  void SetUp() override {
    if (!z3Available())
      GTEST_SKIP() << "built without Z3";
  }
};

TEST_F(Z3Test, DecidesArithmeticBeyondSyntactic) {
  Solver S;
  // x + y == 10 /\ x - y == 4 /\ y != 3  -> unsat over Int.
  PathCondition P =
      pc({"typeof(#x) == ^Int", "typeof(#y) == ^Int", "#x + #y == 10",
          "#x - #y == 4", "!(#y == 3)"});
  EXPECT_EQ(S.checkSat(P), SatResult::Unsat);
  EXPECT_GE(S.stats().Z3Calls, 1u);
}

TEST_F(Z3Test, SatWithModelExtraction) {
  Solver S;
  PathCondition P =
      pc({"typeof(#x) == ^Int", "typeof(#y) == ^Int", "#x + #y == 10",
          "#x - #y == 4"});
  EXPECT_EQ(S.checkSat(P), SatResult::Sat);
  std::optional<Model> M = S.verifiedModel(P);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->lookup(InternedString::get("#x"))->asInt(), 7);
  EXPECT_EQ(M->lookup(InternedString::get("#y"))->asInt(), 3);
}

TEST_F(Z3Test, TruncatedDivisionSemantics) {
  Solver S;
  // In GIL, -7 / 2 == -3 (truncation): conjoining "#x == -7 / 2" with
  // "#x == -4" must be unsat, and with -3 it must be sat.
  EXPECT_EQ(S.checkSat(pc({"typeof(#x) == ^Int", "#x * 2 + 1 == -7",
                           "!(#x == -4)"})),
            SatResult::Unsat);
  PathCondition P = pc({"typeof(#q) == ^Int", "typeof(#a) == ^Int",
                        "#a == -7", "#q == #a / 2", "#q == -3"});
  EXPECT_NE(S.checkSat(P), SatResult::Unsat);
  std::optional<Model> M = S.verifiedModel(P);
  ASSERT_TRUE(M.has_value()) << "model must verify under GIL evaluation";
}

TEST_F(Z3Test, StringConstraints) {
  Solver S;
  PathCondition P = pc({"typeof(#s) == ^Str", "slen(#s) == 2",
                        "#s @+ \"!\" == \"ab!\""});
  EXPECT_EQ(S.checkSat(P), SatResult::Sat);
  std::optional<Model> M = S.verifiedModel(P);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->lookup(InternedString::get("#s"))->asStr().str(), "ab");
}

TEST_F(Z3Test, NumConstraintsOverReals) {
  Solver S;
  PathCondition P = pc({"typeof(#x) == ^Num", "5.0 < #x", "#x < 6.0"});
  EXPECT_EQ(S.checkSat(P), SatResult::Sat);
  std::optional<Model> M = S.verifiedModel(P);
  ASSERT_TRUE(M.has_value());
  double D = M->lookup(InternedString::get("#x"))->asNum();
  EXPECT_GT(D, 5.0);
  EXPECT_LT(D, 6.0);
}

TEST_F(Z3Test, MixedIntNumEqualityIsStructurallyFalse) {
  Solver S;
  // GIL: 1 != 1.0 — so #i == #n with Int #i and Num #n is unsat.
  EXPECT_EQ(S.checkSat(pc({"typeof(#i) == ^Int", "typeof(#n) == ^Num",
                           "#i == #n"})),
            SatResult::Unsat);
}

TEST_F(Z3Test, SymbolsArePairwiseDistinct) {
  Solver S;
  EXPECT_EQ(S.checkSat(pc({"typeof(#l) == ^Sym", "#l == $a", "#l == $b"})),
            SatResult::Unsat);
  PathCondition P = pc({"typeof(#l) == ^Sym", "!(#l == $a)", "#l == $b"});
  EXPECT_EQ(S.checkSat(P), SatResult::Sat);
  std::optional<Model> M = S.verifiedModel(P);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->lookup(InternedString::get("#l"))->asSym().str(), "$b");
}

TEST_F(Z3Test, UnsupportedConjunctsDegradeToUnknownNotWrong) {
  Solver S;
  // Bit-level ops on symbolic operands are dropped; answer must not be a
  // bogus Unsat.
  PathCondition P = pc({"typeof(#x) == ^Int", "(#x << 1) == 4"});
  EXPECT_NE(S.checkSat(P), SatResult::Unsat);
}
