//===- while_lang/memory.cpp ----------------------------------------------===//

#include "while_lang/memory.h"

#include "engine/action_args.h"
#include "obs/action_counters.h"
#include "while_lang/compiler.h"

using namespace gillian;
using namespace gillian::whilelang;
using memlib::BranchCtx;
using memlib::resolveAliases;

//===----------------------------------------------------------------------===//
// Concrete memory
//===----------------------------------------------------------------------===//

void WhileCMem::setProp(InternedString Loc, InternedString P, Value V) {
  const PropMap *Props = Objects.lookup(Loc);
  PropMap NewProps = Props ? *Props : PropMap();
  NewProps.set(P, std::move(V));
  Objects.set(Loc, std::move(NewProps));
}

Result<Value> WhileCMem::execAction(InternedString Act, const Value &Arg) {
  if (Act == actLookup()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    return lookup((*A)[0], (*A)[1]);
  }
  if (Act == actMutate()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 3);
    if (!A)
      return Err(A.error());
    return mutate((*A)[0], (*A)[1], (*A)[2]);
  }
  if (Act == actDispose()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 1);
    if (!A)
      return Err(A.error());
    return dispose((*A)[0]);
  }
  return Err("unknown While action '" + std::string(Act.str()) + "'");
}

Result<Value> WhileCMem::lookup(const Value &Loc, const Value &Prop) {
  // [C-Lookup]: µ = _ ⊎ l.p -> v.
  if (!Loc.isSym())
    return Err("memory fault: lookup on non-location " + Loc.toString());
  if (!Prop.isStr())
    return Err("memory fault: non-string property " + Prop.toString());
  if (Disposed.contains(Loc.asSym()))
    return Err("memory fault: lookup on disposed object " + Loc.toString());
  const PropMap *Props = Objects.lookup(Loc.asSym());
  if (!Props)
    return Err("memory fault: lookup on unknown object " + Loc.toString());
  const Value *V = Props->lookup(Prop.asStr());
  if (!V)
    return Err("memory fault: object " + Loc.toString() +
               " has no property " + Prop.toString());
  return *V;
}

Result<Value> WhileCMem::mutate(const Value &Loc, const Value &Prop,
                                const Value &V) {
  // [C-Mutate-Present] / [C-Mutate-Absent].
  if (!Loc.isSym())
    return Err("memory fault: mutate on non-location " + Loc.toString());
  if (!Prop.isStr())
    return Err("memory fault: non-string property " + Prop.toString());
  if (Disposed.contains(Loc.asSym()))
    return Err("memory fault: mutate on disposed object " + Loc.toString());
  setProp(Loc.asSym(), Prop.asStr(), V);
  return V;
}

Result<Value> WhileCMem::dispose(const Value &Loc) {
  if (!Loc.isSym())
    return Err("memory fault: dispose on non-location " + Loc.toString());
  if (Disposed.contains(Loc.asSym()))
    return Err("memory fault: double dispose of " + Loc.toString());
  if (!Objects.contains(Loc.asSym()))
    return Err("memory fault: dispose of unknown object " + Loc.toString());
  Objects.erase(Loc.asSym());
  Disposed.mark(Loc.asSym());
  return Value::boolV(true);
}

std::string WhileCMem::toString() const {
  return memlib::printEntries(Objects, [](InternedString Loc,
                                          const PropMap &Props) {
    return std::string(Loc.str()) + " -> " +
           memlib::printObject(
               Props, [](InternedString P) { return std::string(P.str()); },
               [](const Value &V) { return V.toString(); });
  });
}

//===----------------------------------------------------------------------===//
// Symbolic memory
//===----------------------------------------------------------------------===//

void WhileSMem::setProp(const Expr &Loc, InternedString P, Expr V) {
  const PropMap *Props = Objects.lookup(Loc);
  PropMap NewProps = Props ? *Props : PropMap();
  NewProps.set(P, std::move(V));
  Objects.set(Loc, std::move(NewProps));
}

Result<std::vector<SymActionBranch<WhileSMem>>>
WhileSMem::execAction(InternedString Act, const Expr &Arg,
                      const PathCondition &PC, Solver &S) const {
  obs::ActionCounters::bump("while", Act);
  if (Act == actLookup()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 2);
    if (!A)
      return Err(A.error());
    Result<InternedString> P = concreteStr((*A)[1]);
    if (!P)
      return Err(P.error());
    return lookup((*A)[0], *P, PC, S);
  }
  if (Act == actMutate()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 3);
    if (!A)
      return Err(A.error());
    Result<InternedString> P = concreteStr((*A)[1]);
    if (!P)
      return Err(P.error());
    return mutate((*A)[0], *P, (*A)[2], PC, S);
  }
  if (Act == actDispose()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 1);
    if (!A)
      return Err(A.error());
    return dispose((*A)[0], PC, S);
  }
  return Err("unknown While action '" + std::string(Act.str()) + "'");
}

std::vector<SymActionBranch<WhileSMem>>
WhileSMem::lookup(const Expr &Loc, InternedString Prop,
                  const PathCondition &PC, Solver &S) const {
  BranchCtx<WhileSMem> Ctx(*this, PC, S);
  Expr Live = Expr::boolE(true);
  if (!Disposed.guard(Ctx, Loc, "memory fault: lookup on disposed object",
                      Live))
    return std::move(Ctx.Out);

  // [S-Lookup]: branch over every potentially-aliasing stored location;
  // the residual (no stored location matches) is a fault.
  resolveAliases(
      Ctx, Objects, Loc, Live, {},
      [&](const Expr &, const PropMap &Props, const Expr &Taken, bool) {
        if (const Expr *V = Props.lookup(Prop))
          Ctx.ok(*this, *V, Taken);
        else
          Ctx.error("memory fault: object has no property " +
                        std::string(Prop.str()),
                    Taken);
      },
      [&](const Expr &Miss) {
        Ctx.error("memory fault: lookup on unknown object", Miss);
      });
  return std::move(Ctx.Out);
}

std::vector<SymActionBranch<WhileSMem>>
WhileSMem::mutate(const Expr &Loc, InternedString Prop, const Expr &V,
                  const PathCondition &PC, Solver &S) const {
  BranchCtx<WhileSMem> Ctx(*this, PC, S);
  Expr Live = Expr::boolE(true);
  if (!Disposed.guard(Ctx, Loc, "memory fault: mutate on disposed object",
                      Live))
    return std::move(Ctx.Out);

  // [S-Mutate-Present] per alias; [S-Mutate-Absent] extends on the miss.
  resolveAliases(
      Ctx, Objects, Loc, Live, {},
      [&](const Expr &Key, const PropMap &, const Expr &Taken, bool) {
        WhileSMem Next = *this;
        Next.setProp(Key, Prop, V);
        Ctx.ok(std::move(Next), Expr::boolE(true), Taken);
      },
      [&](const Expr &Absent) {
        WhileSMem Next = *this;
        Next.setProp(Loc, Prop, V);
        Ctx.ok(std::move(Next), Expr::boolE(true), Absent);
      });
  return std::move(Ctx.Out);
}

std::vector<SymActionBranch<WhileSMem>>
WhileSMem::dispose(const Expr &Loc, const PathCondition &PC,
                   Solver &S) const {
  BranchCtx<WhileSMem> Ctx(*this, PC, S);
  Expr Live = Expr::boolE(true);
  if (!Disposed.guard(Ctx, Loc, "memory fault: double dispose", Live))
    return std::move(Ctx.Out);

  resolveAliases(
      Ctx, Objects, Loc, Live, {},
      [&](const Expr &Key, const PropMap &, const Expr &Taken, bool) {
        WhileSMem Next = *this;
        Next.Objects.erase(Key);
        Next.Disposed.mark(Key);
        Ctx.ok(std::move(Next), Expr::boolE(true), Taken);
      },
      [&](const Expr &Miss) {
        Ctx.error("memory fault: dispose of unknown object", Miss);
      });
  return std::move(Ctx.Out);
}

std::string WhileSMem::toString() const {
  return memlib::printEntries(Objects, [](const Expr &Loc,
                                          const PropMap &Props) {
    return Loc.toString() + " -> " +
           memlib::printObject(
               Props, [](InternedString P) { return std::string(P.str()); },
               [](const Expr &V) { return V.toString(); });
  });
}

//===----------------------------------------------------------------------===//
// Memory interpretation I_W (§3.3)
//===----------------------------------------------------------------------===//

Result<WhileCMem> gillian::whilelang::interpretMemory(const Model &Eps,
                                                      const WhileSMem &SMem) {
  WhileCMem Out;
  for (const auto &[LocE, Props] : SMem.objects()) {
    Result<Value> Loc = Eps.eval(LocE);
    if (!Loc)
      return Err("interpretation failure on location " + LocE.toString() +
                 ": " + Loc.error());
    if (!Loc->isSym())
      return Err("location " + LocE.toString() +
                 " interprets to a non-symbol " + Loc->toString());
    if (Out.objects().contains(Loc->asSym()))
      return Err("locations collapse under the model: " + Loc->toString());
    // Ensure the object exists even when it has no properties.
    for (const auto &[P, VE] : Props) {
      Result<Value> V = Eps.eval(VE);
      if (!V)
        return Err("interpretation failure on " + VE.toString() + ": " +
                   V.error());
      Out.setProp(Loc->asSym(), P, V.take());
    }
    if (Props.empty())
      Out.setProp(Loc->asSym(), InternedString::get("__exists"),
                  Value::boolV(true));
  }
  for (const auto &[DE, _] : SMem.disposed()) {
    Result<Value> D = Eps.eval(DE);
    if (!D)
      return Err("interpretation failure on disposed location " +
                 DE.toString());
    if (!D->isSym())
      return Err("disposed location interprets to a non-symbol");
    Out.markDisposed(D->asSym());
  }
  return Out;
}
