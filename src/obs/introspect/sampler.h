//===- obs/introspect/sampler.h - Heartbeat JSONL sampler ------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The background heartbeat sampler (DESIGN.md §4d): one thread that
/// snapshots the progress/scheduler registries at a fixed cadence,
/// computes rates from consecutive snapshot *deltas* (not lifetime
/// averages — a stall shows up as a zero-rate line, which is the signal),
/// and appends one JSON object per tick to a JSONL file. A long
/// exploration that logs nothing for an hour is indistinguishable from a
/// hung one; a heartbeat file tail is the cheap answer, and plots directly
/// (see EXPERIMENTS.md).
///
/// Each line: {"t_ms":  wall ms since sampler start,
///             "paths_finished" / "solver_queries" / "tests_started":
///                 lifetime totals,
///             "paths_per_sec" / "queries_per_sec": rate over the tick,
///             "frontier_size","pool_workers": sampled gauges,
///             "workers":[depths...],
///             "coverage_covered","coverage_total": branch outcomes}.
///
/// Overhead: one registry walk + one small write() per tick, at a default
/// 1000 ms cadence — unmeasurable next to exploration (the ≤2% acceptance
/// budget covers the sampler *running*, not just idle).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_INTROSPECT_SAMPLER_H
#define GILLIAN_OBS_INTROSPECT_SAMPLER_H

#include "obs/introspect/introspect_server.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace gillian::obs {

class HeartbeatSampler {
public:
  HeartbeatSampler() = default;
  ~HeartbeatSampler() { stop(); }

  HeartbeatSampler(const HeartbeatSampler &) = delete;
  HeartbeatSampler &operator=(const HeartbeatSampler &) = delete;

  /// Opens \p Path for append and starts ticking every \p IntervalMs
  /// (clamped to ≥ 10). Returns false if the file cannot be opened or the
  /// sampler is already running. One line is written immediately on start
  /// (t_ms 0 baseline) and one final line on stop(), so even a sub-interval
  /// run leaves a parseable file.
  bool start(const std::string &Path, uint64_t IntervalMs);

  /// Stops the thread, writes the final line, closes the file. Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }
  /// Lines written so far (including the baseline).
  uint64_t ticks() const { return Ticks.load(std::memory_order_relaxed); }

private:
  struct Snapshot {
    uint64_t Ns = 0;
    uint64_t Paths = 0;
    uint64_t Queries = 0;
  };

  void loop();
  void writeLine(const Snapshot &Prev, const Snapshot &Now);
  Snapshot snap() const;

  std::thread Thread;
  /// Rolling rates over the process-global metricsWindowMs() window,
  /// alongside the per-tick delta rates (which keep their meaning — a
  /// stalled tick is still a zero-rate line).
  RateTracker WindowRates;
  std::atomic<bool> Running{false};
  std::atomic<uint64_t> Ticks{0};
  std::mutex Mu; ///< wake-for-stop CV protection
  std::condition_variable Cv;
  bool StopRequested = false;
  uint64_t IntervalMs = 1000;
  uint64_t StartNs = 0;
  int Fd = -1;
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_INTROSPECT_SAMPLER_H
