//===- tests/mc/compiler_test.cpp -----------------------------------------===//
//
// MC language semantics via concrete execution: typed pointers, structs,
// heap blocks, chunked loads/stores, pointer arithmetic, and the UB
// detections the §4.2 evaluation relies on.
//
//===----------------------------------------------------------------------===//

#include "mc/compiler.h"

#include "engine/test_runner.h"
#include "mc/memory.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::mc;

namespace {

TraceResult<ConcreteState<McCMem>> runMainTrace(std::string_view Src) {
  Result<Prog> P = compileMcSource(Src);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  if (!P.ok())
    return {};
  EngineOptions Opts;
  ExecStats Stats;
  auto R = runConcrete<McCMem>(*P, "main", Opts, Stats);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return R.ok() ? R.take() : TraceResult<ConcreteState<McCMem>>{};
}

Value runMain(std::string_view Src) {
  auto T = runMainTrace(Src);
  EXPECT_EQ(T.Kind, OutcomeKind::Return) << T.Val.toString();
  return T.Val;
}

std::string runMainError(std::string_view Src) {
  auto T = runMainTrace(Src);
  EXPECT_EQ(T.Kind, OutcomeKind::Error) << T.Val.toString();
  return T.Val.isStr() ? std::string(T.Val.asStr().str()) : "";
}

} // namespace

TEST(McCompiler, ScalarArithmetic) {
  EXPECT_EQ(runMain("fn main() -> i64 { return (7 * 3 - 1) / 4; }"),
            Value::intV(5));
  EXPECT_EQ(runMain("fn main() -> f64 { return 1.5 + 2.25; }"),
            Value::numV(3.75));
  EXPECT_EQ(runMain("fn main() -> i64 { return -7 % 3; }"), Value::intV(-1));
}

TEST(McCompiler, DivisionByZeroIsUB) {
  std::string Msg = runMainError(
      "fn main() -> i64 { var d: i64 = 0; return 5 / d; }");
  EXPECT_NE(Msg.find("division by zero"), std::string::npos) << Msg;
}

TEST(McCompiler, AllocStoreLoadRoundTrip) {
  EXPECT_EQ(runMain(R"(
    fn main() -> i64 {
      var p: ptr<i64> = alloc(i64, 2);
      p[0] = 41;
      p[1] = 1;
      return p[0] + p[1];
    })"),
            Value::intV(42));
}

TEST(McCompiler, StructFieldsWithLayout) {
  EXPECT_EQ(runMain(R"(
    struct Pair { a: i32; b: i64; }
    fn main() -> i64 {
      var p: ptr<Pair> = alloc(Pair, 1);
      p->a = 7;
      p->b = 35;
      return i64(p->a) + p->b;
    })"),
            Value::intV(42));
}

TEST(McCompiler, LinkedStructsThroughPointers) {
  EXPECT_EQ(runMain(R"(
    struct Node { val: i64; next: ptr<Node>; }
    fn main() -> i64 {
      var a: ptr<Node> = alloc(Node, 1);
      var b: ptr<Node> = alloc(Node, 1);
      a->val = 1; a->next = b;
      b->val = 2; b->next = null;
      return a->next->val;
    })"),
            Value::intV(2));
}

TEST(McCompiler, PointerArithmeticScalesBySize) {
  EXPECT_EQ(runMain(R"(
    struct Pair { a: i64; b: i64; }
    fn main() -> i64 {
      var p: ptr<Pair> = alloc(Pair, 2);
      (p + 1)->a = 99;
      p->a = 1;
      return (p + 1)->a;
    })"),
            Value::intV(99));
}

TEST(McCompiler, NarrowStoresTruncateAndSignExtend) {
  EXPECT_EQ(runMain(R"(
    fn main() -> i64 {
      var p: ptr<i8> = alloc(i8, 1);
      p[0] = i8(300);   // 300 & 0xFF = 44 as a signed byte
      return p[0];
    })"),
            Value::intV(44));
  EXPECT_EQ(runMain(R"(
    fn main() -> i64 {
      var p: ptr<i8> = alloc(i8, 1);
      p[0] = i8(-1);
      return p[0];      // sign-extends back to -1
    })"),
            Value::intV(-1));
}

TEST(McCompiler, FloatsRoundTripThroughMemory) {
  EXPECT_EQ(runMain(R"(
    fn main() -> f64 {
      var p: ptr<f64> = alloc(f64, 1);
      p[0] = 2.5;
      return p[0] * 2.0;
    })"),
            Value::numV(5.0));
}

TEST(McCompiler, OutOfBoundsIsUB) {
  std::string Msg = runMainError(R"(
    fn main() -> i64 {
      var p: ptr<i64> = alloc(i64, 2);
      p[2] = 1;
      return 0;
    })");
  EXPECT_NE(Msg.find("out-of-bounds"), std::string::npos) << Msg;
}

TEST(McCompiler, UseAfterFreeIsUB) {
  std::string Msg = runMainError(R"(
    fn main() -> i64 {
      var p: ptr<i64> = alloc(i64, 1);
      p[0] = 1;
      free(p);
      return p[0];
    })");
  EXPECT_NE(Msg.find("after free"), std::string::npos) << Msg;
}

TEST(McCompiler, DoubleFreeIsUB) {
  std::string Msg = runMainError(R"(
    fn main() -> i64 {
      var p: ptr<i64> = alloc(i64, 1);
      free(p);
      free(p);
      return 0;
    })");
  EXPECT_NE(Msg.find("double free"), std::string::npos) << Msg;
}

TEST(McCompiler, UninitialisedReadIsUB) {
  std::string Msg = runMainError(R"(
    fn main() -> i64 {
      var p: ptr<i64> = alloc(i64, 1);
      return p[0];
    })");
  EXPECT_NE(Msg.find("uninitialised"), std::string::npos) << Msg;
}

TEST(McCompiler, CrossBlockRelationalCompareIsUB) {
  std::string Msg = runMainError(R"(
    fn main() -> i64 {
      var a: ptr<i64> = alloc(i64, 1);
      var b: ptr<i64> = alloc(i64, 1);
      if (a < b) { return 1; }
      return 0;
    })");
  EXPECT_NE(Msg.find("different objects"), std::string::npos) << Msg;
}

TEST(McCompiler, FreedPointerEqualityCompareIsUB) {
  std::string Msg = runMainError(R"(
    fn main() -> i64 {
      var a: ptr<i64> = alloc(i64, 1);
      free(a);
      if (a == null) { return 1; }
      return 0;
    })");
  EXPECT_NE(Msg.find("freed pointer"), std::string::npos) << Msg;
}

TEST(McCompiler, SameBlockRelationalCompareIsDefined) {
  EXPECT_EQ(runMain(R"(
    fn main() -> i64 {
      var p: ptr<i64> = alloc(i64, 4);
      var q: ptr<i64> = p + 2;
      if (p < q) { return 1; }
      return 0;
    })"),
            Value::intV(1));
}

TEST(McCompiler, NullChecksShortCircuit) {
  EXPECT_EQ(runMain(R"(
    struct Node { val: i64; next: ptr<Node>; }
    fn main() -> i64 {
      var n: ptr<Node> = null;
      if (n != null && n->val == 1) { return 1; }
      return 0;
    })"),
            Value::intV(0))
      << "rhs of && must not dereference null";
}

TEST(McCompiler, MemsetAndMemcpy) {
  EXPECT_EQ(runMain(R"(
    fn main() -> i64 {
      var a: ptr<i8> = alloc(i8, 4);
      var b: ptr<i8> = alloc(i8, 4);
      memset(a, 7, 4);
      memcpy(b, a, 4);
      return b[0] + b[3];
    })"),
            Value::intV(14));
}

TEST(McCompiler, FunctionsAndRecursion) {
  EXPECT_EQ(runMain(R"(
    fn fact(n: i64) -> i64 {
      if (n <= 1) { return 1; }
      return n * fact(n - 1);
    }
    fn main() -> i64 { return fact(6); })"),
            Value::intV(720));
}

TEST(McCompiler, ForLoopsOverArrays) {
  EXPECT_EQ(runMain(R"(
    fn main() -> i64 {
      var p: ptr<i64> = alloc(i64, 5);
      for (var i: i64 = 0; i < 5; i = i + 1) { p[i] = i * i; }
      var s: i64 = 0;
      for (var j: i64 = 0; j < 5; j = j + 1) { s = s + p[j]; }
      return s;
    })"),
            Value::intV(30));
}

TEST(McCompiler, FreeNullIsNoop) {
  EXPECT_EQ(runMain(R"(
    fn main() -> i64 {
      var p: ptr<i64> = null;
      free(p);
      return 1;
    })"),
            Value::intV(1));
}

TEST(McCompiler, SizeofStructWithPadding) {
  EXPECT_EQ(runMain(R"(
    struct S { a: i8; b: i64; c: i32; }
    fn main() -> i64 { return sizeof(S); })"),
            Value::intV(24))
      << "a@0, b@8 (aligned), c@16, padded to 24";
}

TEST(McCompiler, TypeErrorsAreCompileErrors) {
  EXPECT_FALSE(compileMcSource(
                   "fn main() -> i64 { var x: i64 = 1.5; return x; }")
                   .ok())
      << "float into i64";
  EXPECT_FALSE(
      compileMcSource("fn main() -> i64 { return 1.5 + 2; }").ok())
      << "mixed float/int arithmetic requires an explicit cast";
  EXPECT_FALSE(compileMcSource(
                   "fn main() -> i64 { var p: ptr<i64> = null; return p->x; }")
                   .ok())
      << "field access through non-struct pointer";
  EXPECT_FALSE(compileMcSource("fn main() -> i64 { return nope(); }").ok());
}

TEST(McCompiler, NestedPointerTypesParse) {
  EXPECT_EQ(runMain(R"(
    fn main() -> i64 {
      var inner: ptr<i64> = alloc(i64, 1);
      inner[0] = 42;
      var outer: ptr<ptr<i64>> = alloc(ptr<i64>, 1);
      outer[0] = inner;
      var back: ptr<i64> = outer[0];
      return back[0];
    })"),
            Value::intV(42));
}
