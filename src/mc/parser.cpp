//===- mc/parser.cpp ------------------------------------------------------===//

#include "mc/parser.h"

#include "support/diagnostics.h"
#include "support/lexer.h"

using namespace gillian;
using namespace gillian::mc;

namespace {

CExprPtr mk(CExprKind K) {
  auto E = std::make_shared<CExpr>();
  E->Kind = K;
  return E;
}

class McParser {
public:
  explicit McParser(std::string_view Src) : Toks(tokenize(Src)) {}

  Result<CProgram> run() {
    CProgram P;
    while (!cur().is(TokenKind::Eof)) {
      if (cur().isIdent("struct")) {
        Result<CStructDecl> S = parseStruct();
        if (!S)
          return Err(S.error());
        P.Structs.push_back(S.take());
        continue;
      }
      if (cur().isIdent("fn")) {
        Result<CFunc> F = parseFunc();
        if (!F)
          return Err(F.error());
        P.Funcs.push_back(F.take());
        continue;
      }
      return here("expected 'struct' or 'fn'");
    }
    return P;
  }

private:
  std::vector<Token> Toks;
  size_t Pos = 0;

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t A = 1) const {
    size_t I = Pos + A;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  void bump() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }
  Err here(const std::string &Msg) { return Err(diagAtToken(cur(), Msg)); }
  bool eatPunct(std::string_view P) {
    if (P == "=" && PendingEq) {
      PendingEq = false;
      return true;
    }
    if (!cur().isPunct(P))
      return false;
    bump();
    return true;
  }

  /// Consumes one '>' of a type argument list, splitting the maximal-munch
  /// tokens '>>' (nested ptr<ptr<...>>) and '>=' (ptr<T>= initialiser).
  bool eatTypeGt() {
    if (GtDebt > 0) {
      --GtDebt;
      return true;
    }
    if (cur().isPunct(">")) {
      bump();
      return true;
    }
    if (cur().isPunct(">>")) {
      bump();
      GtDebt = 1;
      return true;
    }
    if (cur().isPunct(">=")) {
      bump();
      PendingEq = true;
      return true;
    }
    return false;
  }

  int GtDebt = 0;
  bool PendingEq = false;

  //===--------------------------------------------------------------------===
  // Types
  //===--------------------------------------------------------------------===

  static bool isScalarName(const std::string &S) {
    return S == "i8" || S == "i32" || S == "i64" || S == "f64";
  }

  static ScalarKind scalarOf(const std::string &S) {
    if (S == "i8") return ScalarKind::I8;
    if (S == "i32") return ScalarKind::I32;
    if (S == "i64") return ScalarKind::I64;
    return ScalarKind::F64;
  }

  Result<McType> parseType() {
    if (!cur().is(TokenKind::Ident))
      return here("expected a type");
    std::string Name = cur().Text;
    bump();
    if (isScalarName(Name))
      return McType::scalar(scalarOf(Name));
    if (Name == "ptr") {
      if (!eatPunct("<"))
        return here("expected '<' after 'ptr'");
      Result<McType> Pointee = parseType();
      if (!Pointee)
        return Pointee;
      if (!eatTypeGt())
        return here("expected '>'");
      return McType::pointer(Pointee.take());
    }
    return McType::structT(InternedString::get(Name));
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  Result<CExprPtr> parseExpr() { return parseOr(); }

  template <typename Sub>
  Result<CExprPtr> parseLeftAssoc(Sub SubParse,
                                  std::initializer_list<
                                      std::pair<const char *, CBinOp>>
                                      Ops) {
    Result<CExprPtr> L = SubParse();
    if (!L)
      return L;
    CExprPtr E = L.take();
    while (true) {
      const CBinOp *Found = nullptr;
      for (const auto &[P, Op] : Ops)
        if (cur().isPunct(P)) {
          Found = &Op;
          break;
        }
      if (!Found)
        return E;
      CBinOp Op = *Found;
      bump();
      Result<CExprPtr> R = SubParse();
      if (!R)
        return R;
      CExprPtr N = mk(CExprKind::Binary);
      N->BOp = Op;
      N->Lhs = E;
      N->Rhs = R.take();
      E = N;
    }
  }

  Result<CExprPtr> parseOr() {
    return parseLeftAssoc([this] { return parseAnd(); },
                          {{"||", CBinOp::Or}});
  }
  Result<CExprPtr> parseAnd() {
    return parseLeftAssoc([this] { return parseCmp(); },
                          {{"&&", CBinOp::And}});
  }
  Result<CExprPtr> parseCmp() {
    return parseLeftAssoc(
        [this] { return parseAdd(); },
        {{"==", CBinOp::Eq}, {"!=", CBinOp::Ne}, {"<=", CBinOp::Le},
         {">=", CBinOp::Ge}, {"<", CBinOp::Lt}, {">", CBinOp::Gt}});
  }
  Result<CExprPtr> parseAdd() {
    return parseLeftAssoc([this] { return parseMul(); },
                          {{"+", CBinOp::Add}, {"-", CBinOp::Sub}});
  }
  Result<CExprPtr> parseMul() {
    return parseLeftAssoc(
        [this] { return parseUnary(); },
        {{"*", CBinOp::Mul}, {"/", CBinOp::Div}, {"%", CBinOp::Mod}});
  }

  Result<CExprPtr> parseUnary() {
    if (cur().isPunct("-") || cur().isPunct("!")) {
      CUnOp Op = cur().isPunct("-") ? CUnOp::Neg : CUnOp::Not;
      bump();
      Result<CExprPtr> C = parseUnary();
      if (!C)
        return C;
      CExprPtr N = mk(CExprKind::Unary);
      N->UOp = Op;
      N->Lhs = C.take();
      return N;
    }
    return parsePostfix();
  }

  Result<CExprPtr> parsePostfix() {
    Result<CExprPtr> P = parsePrimary();
    if (!P)
      return P;
    CExprPtr E = P.take();
    while (true) {
      if (cur().isPunct("->")) {
        bump();
        if (!cur().is(TokenKind::Ident))
          return here("expected field name after '->'");
        CExprPtr N = mk(CExprKind::Field);
        N->Lhs = E;
        N->Name = cur().Text;
        bump();
        E = N;
        continue;
      }
      if (cur().isPunct("[")) {
        bump();
        Result<CExprPtr> I = parseExpr();
        if (!I)
          return I;
        if (!eatPunct("]"))
          return here("expected ']'");
        CExprPtr N = mk(CExprKind::Index);
        N->Lhs = E;
        N->Rhs = I.take();
        E = N;
        continue;
      }
      return E;
    }
  }

  Result<CExprPtr> parsePrimary() {
    const Token &T = cur();
    if (T.is(TokenKind::Int)) {
      CExprPtr E = mk(CExprKind::IntLit);
      E->IntVal = T.IntVal;
      bump();
      return E;
    }
    if (T.is(TokenKind::Float)) {
      CExprPtr E = mk(CExprKind::FloatLit);
      E->FloatVal = T.FloatVal;
      bump();
      return E;
    }
    if (T.isIdent("null")) {
      bump();
      return mk(CExprKind::Null);
    }
    if (T.isPunct("(")) {
      bump();
      Result<CExprPtr> E = parseExpr();
      if (!E)
        return E;
      if (!eatPunct(")"))
        return here("expected ')'");
      return E;
    }
    if (T.is(TokenKind::Ident)) {
      std::string Name = T.Text;
      if (peek().isPunct("(")) {
        bump();
        bump();
        // sizeof(T) and alloc(T, n) take a leading type argument.
        if (Name == "sizeof") {
          Result<McType> Ty = parseType();
          if (!Ty)
            return Err(Ty.error());
          if (!eatPunct(")"))
            return here("expected ')'");
          CExprPtr E = mk(CExprKind::SizeOf);
          E->Type = Ty.take();
          return E;
        }
        if (Name == "alloc") {
          Result<McType> Ty = parseType();
          if (!Ty)
            return Err(Ty.error());
          if (!eatPunct(","))
            return here("expected ','");
          Result<CExprPtr> N = parseExpr();
          if (!N)
            return N;
          if (!eatPunct(")"))
            return here("expected ')'");
          CExprPtr E = mk(CExprKind::Alloc);
          E->Type = Ty.take();
          E->Lhs = N.take();
          return E;
        }
        CExprPtr E = mk(CExprKind::Call);
        E->Name = Name;
        if (!cur().isPunct(")")) {
          while (true) {
            Result<CExprPtr> A = parseExpr();
            if (!A)
              return A;
            E->Args.push_back(A.take());
            if (eatPunct(","))
              continue;
            break;
          }
        }
        if (!eatPunct(")"))
          return here("expected ')'");
        return E;
      }
      bump();
      CExprPtr E = mk(CExprKind::Var);
      E->Name = Name;
      return E;
    }
    return here("expected an expression");
  }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  Result<std::vector<CStmt>> parseBlock() {
    if (!eatPunct("{"))
      return here("expected '{'");
    std::vector<CStmt> Out;
    while (!cur().isPunct("}")) {
      if (cur().is(TokenKind::Eof))
        return here("unterminated block");
      Result<CStmt> S = parseStmt();
      if (!S)
        return Err(S.error());
      Out.push_back(S.take());
    }
    bump();
    return Out;
  }

  Result<CStmt> parseStmt() {
    if (cur().isIdent("var"))
      return terminated(parseVarDecl());
    if (cur().isIdent("if"))
      return parseIf();
    if (cur().isIdent("while"))
      return parseWhile();
    if (cur().isIdent("for"))
      return parseFor();
    if (cur().isIdent("return")) {
      bump();
      CStmt S;
      S.Kind = CStmtKind::Return;
      if (!cur().isPunct(";")) {
        Result<CExprPtr> E = parseExpr();
        if (!E)
          return Err(E.error());
        S.E = E.take();
      } else {
        S.E = mk(CExprKind::IntLit); // return 0 by default
      }
      if (!eatPunct(";"))
        return here("expected ';'");
      return S;
    }
    if (cur().isIdent("assume") || cur().isIdent("assert")) {
      bool IsAssume = cur().Text == "assume";
      bump();
      if (!eatPunct("("))
        return here("expected '('");
      Result<CExprPtr> E = parseExpr();
      if (!E)
        return Err(E.error());
      if (!eatPunct(")") || !eatPunct(";"))
        return here("expected ');'");
      CStmt S;
      S.Kind = IsAssume ? CStmtKind::Assume : CStmtKind::Assert;
      S.E = E.take();
      return S;
    }
    return terminated(parseSimple());
  }

  Result<CStmt> terminated(Result<CStmt> S) {
    if (!S)
      return S;
    if (!eatPunct(";"))
      return here("expected ';'");
    return S;
  }

  Result<CStmt> parseVarDecl() {
    bump(); // var
    if (!cur().is(TokenKind::Ident))
      return here("expected variable name");
    CStmt S;
    S.Kind = CStmtKind::VarDecl;
    S.Name = cur().Text;
    bump();
    if (!eatPunct(":"))
      return here("expected ':'");
    Result<McType> Ty = parseType();
    if (!Ty)
      return Err(Ty.error());
    S.DeclType = Ty.take();
    if (!eatPunct("="))
      return here("expected '=' (MC requires initialised declarations)");
    Result<CExprPtr> E = parseExpr();
    if (!E)
      return Err(E.error());
    S.E = E.take();
    return S;
  }

  /// Assignment / member assignment / bare call (no terminator).
  Result<CStmt> parseSimple() {
    Result<CExprPtr> L = parseExpr();
    if (!L)
      return Err(L.error());
    CExprPtr E = L.take();
    if (cur().isPunct("=")) {
      bump();
      Result<CExprPtr> R = parseExpr();
      if (!R)
        return Err(R.error());
      CStmt S;
      if (E->Kind == CExprKind::Var) {
        S.Kind = CStmtKind::Assign;
        S.Name = E->Name;
        S.E = R.take();
        return S;
      }
      if (E->Kind == CExprKind::Field) {
        S.Kind = CStmtKind::FieldSet;
        S.Base = E->Lhs;
        S.Name = E->Name;
        S.E = R.take();
        return S;
      }
      if (E->Kind == CExprKind::Index) {
        S.Kind = CStmtKind::IndexSet;
        S.Base = E->Lhs;
        S.Idx = E->Rhs;
        S.E = R.take();
        return S;
      }
      return here("invalid assignment target");
    }
    CStmt S;
    S.Kind = CStmtKind::ExprStmt;
    S.E = E;
    return S;
  }

  Result<CStmt> parseIf() {
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    Result<CExprPtr> C = parseExpr();
    if (!C)
      return Err(C.error());
    if (!eatPunct(")"))
      return here("expected ')'");
    CStmt S;
    S.Kind = CStmtKind::If;
    S.E = C.take();
    Result<std::vector<CStmt>> Then = parseBlock();
    if (!Then)
      return Err(Then.error());
    S.Then = Then.take();
    if (cur().isIdent("else")) {
      bump();
      if (cur().isIdent("if")) {
        Result<CStmt> Nested = parseIf();
        if (!Nested)
          return Nested;
        S.Else.push_back(Nested.take());
        return S;
      }
      Result<std::vector<CStmt>> Else = parseBlock();
      if (!Else)
        return Err(Else.error());
      S.Else = Else.take();
    }
    return S;
  }

  Result<CStmt> parseWhile() {
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    Result<CExprPtr> C = parseExpr();
    if (!C)
      return Err(C.error());
    if (!eatPunct(")"))
      return here("expected ')'");
    CStmt S;
    S.Kind = CStmtKind::While;
    S.E = C.take();
    Result<std::vector<CStmt>> Body = parseBlock();
    if (!Body)
      return Err(Body.error());
    S.Then = Body.take();
    return S;
  }

  Result<CStmt> parseFor() {
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    CStmt S;
    S.Kind = CStmtKind::For;
    if (!cur().isPunct(";")) {
      Result<CStmt> Init =
          cur().isIdent("var") ? parseVarDecl() : parseSimple();
      if (!Init)
        return Init;
      S.Init.push_back(Init.take());
    }
    if (!eatPunct(";"))
      return here("expected ';'");
    if (!cur().isPunct(";")) {
      Result<CExprPtr> C = parseExpr();
      if (!C)
        return Err(C.error());
      S.E = C.take();
    } else {
      CExprPtr T = mk(CExprKind::IntLit);
      T->IntVal = 1;
      S.E = T; // `for(;;)` — compiler treats nonzero literal as true
    }
    if (!eatPunct(";"))
      return here("expected ';'");
    if (!cur().isPunct(")")) {
      Result<CStmt> Step = parseSimple();
      if (!Step)
        return Step;
      S.Step.push_back(Step.take());
    }
    if (!eatPunct(")"))
      return here("expected ')'");
    Result<std::vector<CStmt>> Body = parseBlock();
    if (!Body)
      return Err(Body.error());
    S.Then = Body.take();
    return S;
  }

  //===--------------------------------------------------------------------===
  // Declarations
  //===--------------------------------------------------------------------===

  Result<CStructDecl> parseStruct() {
    bump(); // struct
    if (!cur().is(TokenKind::Ident))
      return here("expected struct name");
    CStructDecl D;
    D.Name = cur().Text;
    bump();
    if (!eatPunct("{"))
      return here("expected '{'");
    while (!cur().isPunct("}")) {
      if (!cur().is(TokenKind::Ident))
        return here("expected field name");
      std::string FName = cur().Text;
      bump();
      if (!eatPunct(":"))
        return here("expected ':'");
      Result<McType> Ty = parseType();
      if (!Ty)
        return Err(Ty.error());
      if (!eatPunct(";"))
        return here("expected ';'");
      D.Fields.emplace_back(FName, Ty.take());
    }
    bump();
    return D;
  }

  Result<CFunc> parseFunc() {
    bump(); // fn
    if (!cur().is(TokenKind::Ident))
      return here("expected function name");
    CFunc F;
    F.Name = cur().Text;
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    if (!cur().isPunct(")")) {
      while (true) {
        if (!cur().is(TokenKind::Ident))
          return here("expected parameter name");
        std::string PName = cur().Text;
        bump();
        if (!eatPunct(":"))
          return here("expected ':'");
        Result<McType> Ty = parseType();
        if (!Ty)
          return Err(Ty.error());
        F.Params.emplace_back(PName, Ty.take());
        if (eatPunct(","))
          continue;
        break;
      }
    }
    if (!eatPunct(")"))
      return here("expected ')'");
    if (eatPunct("->")) {
      Result<McType> Ty = parseType();
      if (!Ty)
        return Err(Ty.error());
      F.RetType = Ty.take();
    } else {
      F.RetType = McType::scalar(ScalarKind::I64);
    }
    Result<std::vector<CStmt>> Body = parseBlock();
    if (!Body)
      return Err(Body.error());
    F.Body = Body.take();
    return F;
  }
};

} // namespace

Result<CProgram> gillian::mc::parseMc(std::string_view Source) {
  return McParser(Source).run();
}
