//===- engine/scheduler/scheduler_options.h - Scheduler knobs --*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the parallel exploration scheduler. Kept separate from
/// the pool/scheduler implementations so options.h (and therefore every
/// engine client) can embed it without pulling in <thread>.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_SCHEDULER_SCHEDULER_OPTIONS_H
#define GILLIAN_ENGINE_SCHEDULER_SCHEDULER_OPTIONS_H

#include <cstdint>

namespace gillian {

struct SchedulerOptions {
  /// Number of exploration workers. 1 (the default) runs the classic
  /// sequential depth-first worklist — bit-identical to the pre-scheduler
  /// engine, including result order. N > 1 explores path-disjoint
  /// configurations on a work-stealing pool of N threads and merges
  /// results in branch-trace order (deterministic, schedule-independent).
  uint32_t Workers = 1;

  /// How many configurations a thief moves from a victim's deque per
  /// steal: the first is executed immediately, the rest seed the thief's
  /// own deque so it does not come back for every configuration of a
  /// freshly forked subtree.
  uint32_t StealBatch = 4;

  /// With Workers <= 1, run the worklist inline on the calling thread
  /// (no pool, no result re-ordering) instead of a one-worker pool.
  /// Disable only to exercise the pool machinery itself in tests.
  bool SequentialFallback = true;

  /// True when this configuration actually spins up the thread pool.
  bool parallel() const { return Workers > 1 || !SequentialFallback; }
};

} // namespace gillian

#endif // GILLIAN_ENGINE_SCHEDULER_SCHEDULER_OPTIONS_H
