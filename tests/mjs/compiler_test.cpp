//===- tests/mjs/compiler_test.cpp ----------------------------------------===//
//
// MJS language semantics via concrete execution of compiled GIL: dynamic
// typing, truthiness, objects, arrays, computed properties, deletion,
// runtime TypeErrors.
//
//===----------------------------------------------------------------------===//

#include "mjs/compiler.h"

#include "engine/test_runner.h"
#include "gil/parser.h"
#include "mjs/memory.h"
#include "mjs/runtime.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace gillian;
using namespace gillian::mjs;

namespace {

Value runMain(std::string_view Src) {
  Result<Prog> P = compileMjsSource(Src);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  if (!P.ok())
    return Value();
  EngineOptions Opts;
  ExecStats Stats;
  auto R = runConcrete<MjsCMem>(*P, "main", Opts, Stats);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  if (!R.ok())
    return Value();
  EXPECT_EQ(R->Kind, OutcomeKind::Return) << R->Val.toString();
  return R->Val;
}

OutcomeKind runMainOutcome(std::string_view Src) {
  Result<Prog> P = compileMjsSource(Src);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  if (!P.ok())
    return OutcomeKind::Error;
  EngineOptions Opts;
  ExecStats Stats;
  auto R = runConcrete<MjsCMem>(*P, "main", Opts, Stats);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return R.ok() ? R->Kind : OutcomeKind::Error;
}

} // namespace

TEST(MjsCompiler, NumbersAreDoubles) {
  Value V = runMain("function main() { return 1 / 2; }");
  ASSERT_TRUE(V.isNum());
  EXPECT_DOUBLE_EQ(V.asNum(), 0.5);
}

TEST(MjsCompiler, DivisionByZeroIsInfinity) {
  Value V = runMain("function main() { return 1 / 0; }");
  ASSERT_TRUE(V.isNum());
  EXPECT_TRUE(std::isinf(V.asNum()));
}

TEST(MjsCompiler, PlusDispatchesOnTypes) {
  EXPECT_EQ(runMain("function main() { return 1 + 2; }"), Value::numV(3));
  EXPECT_EQ(runMain("function main() { return \"a\" + \"b\"; }"),
            Value::strV("ab"));
  EXPECT_EQ(runMainOutcome("function main() { return 1 + \"b\"; }"),
            OutcomeKind::Error)
      << "MJS + is strict across types";
}

TEST(MjsCompiler, ArithmeticTypeGuards) {
  EXPECT_EQ(runMainOutcome("function main() { return \"a\" * 2; }"),
            OutcomeKind::Error);
  EXPECT_EQ(runMainOutcome("function main() { return -\"a\"; }"),
            OutcomeKind::Error);
}

TEST(MjsCompiler, TruthinessTable) {
  const char *Tpl = "function main() { if (%s) { return 1; } return 0; }";
  auto Run = [&](const char *Cond) {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), Tpl, Cond);
    return runMain(Buf).asNum();
  };
  EXPECT_EQ(Run("0"), 0.0);
  EXPECT_EQ(Run("0.0"), 0.0);
  EXPECT_EQ(Run("\"\""), 0.0);
  EXPECT_EQ(Run("false"), 0.0);
  EXPECT_EQ(Run("undefined"), 0.0);
  EXPECT_EQ(Run("null"), 0.0);
  EXPECT_EQ(Run("42"), 1.0);
  EXPECT_EQ(Run("\"x\""), 1.0);
  EXPECT_EQ(Run("{}"), 1.0) << "objects are truthy";
}

TEST(MjsCompiler, ShortCircuitReturnsOperandValue) {
  EXPECT_EQ(runMain("function main() { return 0 || \"dflt\"; }"),
            Value::strV("dflt"));
  EXPECT_EQ(runMain("function main() { return 1 && \"right\"; }"),
            Value::strV("right"));
  EXPECT_EQ(runMain("function main() { return null && boom(); }"),
            jsNull())
      << "rhs must not evaluate";
}

TEST(MjsCompiler, ObjectsAndMembers) {
  EXPECT_EQ(runMain(R"(
    function main() {
      var o = { a: 1, b: { c: 2 } };
      o.a = o.a + 10;
      return o.a + o.b.c;
    })"),
            Value::numV(13));
}

TEST(MjsCompiler, ComputedPropertiesCoerceNumbers) {
  EXPECT_EQ(runMain(R"(
    function main() {
      var o = {};
      o[0] = "zero";
      return o["0"];
    })"),
            Value::strV("zero"))
      << "o[0] and o[\"0\"] must be the same property";
}

TEST(MjsCompiler, MissingPropertyIsUndefined) {
  EXPECT_EQ(runMain("function main() { var o = {}; return o.nope; }"),
            jsUndefined());
}

TEST(MjsCompiler, DeleteRemovesProperty) {
  EXPECT_EQ(runMain(R"(
    function main() {
      var o = { a: 1 };
      delete o.a;
      return o.a;
    })"),
            jsUndefined());
}

TEST(MjsCompiler, ArrayLiteralsHaveLength) {
  EXPECT_EQ(runMain(R"(
    function main() {
      var a = [10, 20, 30];
      return a[1] + a.length;
    })"),
            Value::numV(23));
}

TEST(MjsCompiler, MemberOfUndefinedIsTypeError) {
  EXPECT_EQ(runMainOutcome("function main() { var u = undefined; "
                           "return u.p; }"),
            OutcomeKind::Error);
}

TEST(MjsCompiler, TypeofOperator) {
  EXPECT_EQ(runMain("function main() { return typeof 1; }"),
            Value::strV("number"));
  EXPECT_EQ(runMain("function main() { return typeof \"s\"; }"),
            Value::strV("string"));
  EXPECT_EQ(runMain("function main() { return typeof undefined; }"),
            Value::strV("undefined"));
  EXPECT_EQ(runMain("function main() { return typeof null; }"),
            Value::strV("object"));
  EXPECT_EQ(runMain("function main() { return typeof {}; }"),
            Value::strV("object"));
}

TEST(MjsCompiler, StrictEqualityDoesNotCoerce) {
  EXPECT_EQ(runMain("function main() { if (1 === \"1\") { return 1; } "
                    "return 0; }"),
            Value::numV(0));
  EXPECT_EQ(runMain("function main() { if (null === undefined) { return 1; }"
                    " return 0; }"),
            Value::numV(0));
}

TEST(MjsCompiler, ForLoopsAndFunctions) {
  EXPECT_EQ(runMain(R"(
    function sum_to(n) {
      var s = 0;
      for (var i = 1; i <= n; i = i + 1) { s = s + i; }
      return s;
    }
    function main() { return sum_to(10); })"),
            Value::numV(55));
}

TEST(MjsCompiler, WhileAndEarlyReturn) {
  EXPECT_EQ(runMain(R"(
    function find(limit) {
      var i = 0;
      while (true) {
        if (i * i >= limit) { return i; }
        i = i + 1;
      }
    }
    function main() { return find(17); })"),
            Value::numV(5));
}

TEST(MjsCompiler, ReferencesShareObjects) {
  EXPECT_EQ(runMain(R"(
    function poke(o) { o.v = 99; return 0; }
    function main() {
      var o = { v: 1 };
      poke(o);
      return o.v;
    })"),
            Value::numV(99));
}

TEST(MjsCompiler, FunctionsReturnUndefinedByDefault) {
  EXPECT_EQ(runMain(R"(
    function noop(x) { x = 1; }
    function main() { return noop(0); })"),
            jsUndefined());
}

TEST(MjsCompiler, ElseIfChains) {
  EXPECT_EQ(runMain(R"(
    function classify(n) {
      if (n < 0) { return "neg"; }
      else if (n === 0) { return "zero"; }
      else { return "pos"; }
    }
    function main() { return classify(0); })"),
            Value::strV("zero"));
}

TEST(MjsCompiler, ParseErrors) {
  EXPECT_FALSE(compileMjsSource("function main() { var; }").ok());
  EXPECT_FALSE(compileMjsSource("function main() { 1 = 2; }").ok());
  EXPECT_FALSE(compileMjsSource("function main() { delete x; }").ok());
}

TEST(MjsCompiler, CompiledGilRoundTripsThroughTextualFormat) {
  const char *Src = R"(
    function main() {
      var o = { k: [1, 2, 3] };
      var s = "";
      if (o.k.length > 2) { s = s + "big"; }
      return s + "!";
    })";
  Result<Prog> P1 = compileMjsSource(Src);
  ASSERT_TRUE(P1.ok()) << P1.error();
  std::string Printed = P1->toString();
  Result<Prog> P2 = parseGilProg(Printed);
  ASSERT_TRUE(P2.ok()) << P2.error();
  EXPECT_EQ(P2->toString(), Printed);
  EngineOptions Opts;
  ExecStats S1, S2;
  auto R1 = runConcrete<MjsCMem>(*P1, "main", Opts, S1);
  auto R2 = runConcrete<MjsCMem>(*P2, "main", Opts, S2);
  ASSERT_TRUE(R1.ok() && R2.ok());
  EXPECT_EQ(R1->Val, R2->Val);
}

TEST(MjsRuntime, ParsesAndLinksIntoEveryProgram) {
  // The runtime is written in textual GIL; it must parse, contain the
  // four dispatch procedures, and be present in every compiled program.
  Result<Prog> R = parseGilProg(runtimeSource());
  ASSERT_TRUE(R.ok()) << R.error();
  for (const char *Name : {"__mjs_truthy", "__mjs_add", "__mjs_typeof",
                           "__mjs_topropname"})
    EXPECT_NE(R->find(Name), nullptr) << Name;

  Result<Prog> P = compileMjsSource("function main() { return 1; }");
  ASSERT_TRUE(P.ok());
  EXPECT_NE(P->find("__mjs_truthy"), nullptr)
      << "runtime must be linked into compiled programs";
}
