//===- obs/introspect/http_server.h - Minimal HTTP/1.1 server --*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free, poll(2)-based HTTP/1.1 server — just enough protocol
/// for the live-introspection endpoints (DESIGN.md §4d): GET requests,
/// keep-alive, 400 on malformed input, one background thread multiplexing
/// every connection. POSIX sockets only; no third-party library, per the
/// repo's no-new-dependencies rule.
///
/// Scope is deliberately tiny: no TLS, no request bodies, no chunked
/// encoding, no pipelining beyond what a serial keep-alive connection
/// gives. The consumers are `curl` loops, Prometheus scrapers, and the
/// repo's own tests — all well-behaved GET clients. Malformed or oversized
/// requests get a 400 and the connection closed; a stuck client cannot
/// stall the server (poll() multiplexes, reads never block).
///
/// Shutdown uses the self-pipe trick: stop() writes one byte into a pipe
/// the poll set always contains, so the server thread wakes immediately
/// instead of riding out a poll timeout.
///
/// parseHttpRequest() is exposed separately so the unit tests can feed it
/// malformed byte strings without a socket in sight.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_INTROSPECT_HTTP_SERVER_H
#define GILLIAN_OBS_INTROSPECT_HTTP_SERVER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace gillian::obs {

/// One parsed request line + headers. Bodies are not supported (GET-only
/// protocol); a Content-Length > 0 is treated as malformed.
struct HttpRequest {
  std::string Method;  ///< e.g. "GET"
  std::string Target;  ///< path without query string, e.g. "/metrics"
  std::string Query;   ///< query string without '?', may be empty
  std::string Version; ///< e.g. "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> Headers; ///< lower-case keys
  bool KeepAlive = false; ///< from Connection / HTTP version defaults

  /// First value of header \p Key (lower-case), or "" if absent.
  std::string_view header(std::string_view Key) const;
};

/// Parses one complete request (request line + headers + terminating
/// CRLFCRLF) from \p Raw. Returns false on any malformed input: missing
/// request-line fields, non-HTTP version token, header line without a
/// colon, embedded NUL, or a body (Content-Length / Transfer-Encoding).
/// Tolerates bare-LF line endings (curl never sends them, humans with
/// netcat do).
bool parseHttpRequest(std::string_view Raw, HttpRequest &Out);

/// A response the handler fills in. writeTo() (internal) adds the status
/// line, Content-Length, Connection, and Content-Type headers.
struct HttpResponse {
  int Status = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
};

/// The server: bind + listen on start(), one background thread polling the
/// listener and every open connection, handler invoked synchronously on
/// that thread (the endpoints render snapshots in microseconds; a second
/// thread would buy nothing but races).
class HttpServer {
public:
  using Handler = std::function<HttpResponse(const HttpRequest &)>;

  HttpServer() = default;
  ~HttpServer() { stop(); }

  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  /// Binds \p Host:\p Port (port 0 = ephemeral), starts the serving
  /// thread, and returns the actually-bound port; 0 on failure (address
  /// in use, bad host, ...). \p H handles every well-formed request.
  uint16_t start(const std::string &Host, uint16_t Port, Handler H);

  /// Stops the serving thread and closes every socket. Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }
  uint16_t port() const { return BoundPort; }

  /// Total well-formed requests answered (any status). Monotone; used by
  /// the drivers' --serve-linger-ms logic and the tests.
  uint64_t requestsServed() const {
    return Served.load(std::memory_order_relaxed);
  }
  /// Steady-clock ns timestamp of the most recent answered request
  /// (0 = none yet).
  uint64_t lastRequestNs() const {
    return LastRequestNs.load(std::memory_order_relaxed);
  }

private:
  struct Conn; // per-connection read buffer + fd

  void serveLoop();
  /// Consumes complete requests from \p C's buffer; returns false when the
  /// connection should close (error, malformed, or Connection: close).
  bool handleReadable(Conn &C);

  Handler Handle;
  std::thread Thread;
  std::atomic<bool> Running{false};
  std::atomic<uint64_t> Served{0};
  std::atomic<uint64_t> LastRequestNs{0};
  int ListenFd = -1;
  int WakePipe[2] = {-1, -1}; ///< self-pipe: [0] in poll set, [1] written by stop()
  uint16_t BoundPort = 0;
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_INTROSPECT_HTTP_SERVER_H
