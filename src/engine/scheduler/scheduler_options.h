//===- engine/scheduler/scheduler_options.h - Scheduler knobs --*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the parallel exploration scheduler. Kept separate from
/// the pool/scheduler implementations so options.h (and therefore every
/// engine client) can embed it without pulling in <thread>.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_SCHEDULER_SCHEDULER_OPTIONS_H
#define GILLIAN_ENGINE_SCHEDULER_SCHEDULER_OPTIONS_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace gillian {

/// Which configuration a worker explores next — the engine-level search
/// strategy, a first-class swappable component as in the Gillian and
/// Soteria platform papers. The strategy owns the per-worker frontier
/// container (engine/scheduler/frontier.h): what push/pop/steal mean is
/// defined per strategy.
enum class SelectionStrategy : uint8_t {
  /// Depth-first with oldest-first steals: each worker's frontier is a
  /// deque (LIFO pop for locality, FIFO steal of the shallowest forks).
  /// The default, bit-identical to the pre-strategy scheduler.
  OldestFirst,
  /// KLEE-style random-path selection: pop and steal pick uniformly at
  /// random from the frontier, from a deterministic per-worker generator
  /// seeded by SchedulerOptions::Seed — runs are reproducible.
  RandomPath,
  /// Priority by estimated remaining subtree size: shallow branch traces
  /// with plenty of loop budget left head the largest unexplored
  /// subtrees and are picked (and stolen) first.
  SubtreeSize,
  /// Coverage-guided: configurations whose next reachable IfGoto outcome
  /// is still uncovered (per obs::BranchCoverage, fed live by the
  /// interpreter) are boosted ahead of everything else; ties fall back to
  /// the subtree-size estimate. Requires obs coverage (on by default).
  CoverageGuided,
};

/// Stable lower-case names used by --strategy=, bench JSON and /metrics.
constexpr const char *strategyName(SelectionStrategy S) {
  switch (S) {
  case SelectionStrategy::OldestFirst: return "oldest";
  case SelectionStrategy::RandomPath: return "random";
  case SelectionStrategy::SubtreeSize: return "subtree";
  case SelectionStrategy::CoverageGuided: return "coverage";
  }
  return "oldest";
}

/// Parses a strategy name as accepted by --strategy= (the strategyName()
/// spellings plus a few aliases); nullopt on anything else.
inline std::optional<SelectionStrategy>
parseStrategy(std::string_view Name) {
  if (Name == "oldest" || Name == "dfs" || Name == "oldest-first")
    return SelectionStrategy::OldestFirst;
  if (Name == "random" || Name == "random-path")
    return SelectionStrategy::RandomPath;
  if (Name == "subtree" || Name == "subtree-size")
    return SelectionStrategy::SubtreeSize;
  if (Name == "coverage" || Name == "coverage-guided")
    return SelectionStrategy::CoverageGuided;
  return std::nullopt;
}

struct SchedulerOptions {
  /// Number of exploration workers. 1 (the default) runs the classic
  /// sequential depth-first worklist — bit-identical to the pre-scheduler
  /// engine, including result order. N > 1 explores path-disjoint
  /// configurations on a work-stealing pool of N threads and merges
  /// results in branch-trace order (deterministic, schedule-independent).
  uint32_t Workers = 1;

  /// How many configurations a thief moves from a victim's frontier per
  /// steal: the first is executed immediately, the rest seed the thief's
  /// own frontier so it does not come back for every configuration of a
  /// freshly forked subtree.
  uint32_t StealBatch = 4;

  /// With Workers <= 1, run the worklist inline on the calling thread
  /// (no pool, no result re-ordering) instead of a one-worker pool.
  /// Disable only to exercise the pool machinery itself in tests.
  bool SequentialFallback = true;

  /// Path-selection strategy. Every strategy yields the same *set* of
  /// outcomes and the same branch-trace-sorted result sequence (the
  /// exploration is exhaustive and the merge order is strategy-
  /// independent); what changes is the order paths are *discovered* in,
  /// which matters under budgets (MaxPaths/MaxSteps) and for
  /// time-to-first-bug / time-to-full-coverage. A non-default strategy
  /// engages the strategy-aware scheduler even at Workers = 1.
  SelectionStrategy Strategy = SelectionStrategy::OldestFirst;

  /// Seed of the deterministic per-worker generators used by RandomPath
  /// (mixed with the worker index). Same options => same exploration
  /// order at Workers = 1; at higher worker counts the steal schedule
  /// still races, but the outcome set does not depend on it.
  uint64_t Seed = 0x9E3779B97F4A7C15ull;

  /// True when this configuration runs the strategy-aware scheduler
  /// (thread pool + frontiers) rather than the inline sequential
  /// worklist. Any non-default strategy needs the frontier machinery, so
  /// it forces the scheduler on even for one worker.
  bool parallel() const {
    return Workers > 1 || !SequentialFallback ||
           Strategy != SelectionStrategy::OldestFirst;
  }
};

} // namespace gillian

#endif // GILLIAN_ENGINE_SCHEDULER_SCHEDULER_OPTIONS_H
