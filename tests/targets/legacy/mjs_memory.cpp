//===- tests/targets/legacy/mjs_memory.cpp ---------------------------------===//
//
// VERBATIM SNAPSHOT of src/mjs/memory.cpp as of the memlib refactor, kept
// solely so memlib_differential_test can replay suites on the pre-memlib
// action implementations and assert bit-identical branch sequences.
// Namespace renamed gillian::mjs -> gillian::legacy.
// Do not edit: this file intentionally preserves the old code paths.
//
//===----------------------------------------------------------------------===//

//===- mjs/memory.cpp -----------------------------------------------------===//

#include "mjs_memory.h"

#include "engine/action_args.h"
#include "obs/action_counters.h"
#include "solver/simplifier.h"

using namespace gillian;
using namespace gillian::legacy;

InternedString gillian::legacy::actNewObj() { return InternedString::get("newObj"); }
InternedString gillian::legacy::actDelObj() { return InternedString::get("delObj"); }
InternedString gillian::legacy::actGetProp() { return InternedString::get("getProp"); }
InternedString gillian::legacy::actSetProp() { return InternedString::get("setProp"); }
InternedString gillian::legacy::actDelProp() { return InternedString::get("delProp"); }
InternedString gillian::legacy::actHasProp() { return InternedString::get("hasProp"); }
InternedString gillian::legacy::actGetMeta() { return InternedString::get("getMeta"); }
InternedString gillian::legacy::actSetMeta() { return InternedString::get("setMeta"); }

Value gillian::legacy::jsUndefined() { return Value::symV("$undefined"); }
Value gillian::legacy::jsNull() { return Value::symV("$null"); }

//===----------------------------------------------------------------------===//
// Concrete memory
//===----------------------------------------------------------------------===//

void MjsCMem::defineObject(InternedString Loc, Value MetaVal) {
  Heap.set(Loc, PropMap());
  Meta.set(Loc, std::move(MetaVal));
}

void MjsCMem::setProp(InternedString Loc, InternedString P, Value V) {
  const PropMap *Props = Heap.lookup(Loc);
  PropMap NewProps = Props ? *Props : PropMap();
  NewProps.set(P, std::move(V));
  Heap.set(Loc, std::move(NewProps));
}

Result<InternedString> MjsCMem::liveLoc(const Value &Loc,
                                        const char *What) const {
  if (!Loc.isSym())
    return Err(std::string("TypeError: ") + What + " on non-object " +
               Loc.toString());
  if (Deleted.contains(Loc.asSym()))
    return Err(std::string("TypeError: ") + What + " on deleted object " +
               Loc.toString());
  if (!Heap.contains(Loc.asSym()))
    return Err(std::string("TypeError: ") + What + " on unknown object " +
               Loc.toString());
  return Loc.asSym();
}

Result<Value> MjsCMem::execAction(InternedString Act, const Value &Arg) {
  if (Act == actNewObj()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    if (!(*A)[0].isSym())
      return Err("newObj expects a fresh location symbol");
    defineObject((*A)[0].asSym(), (*A)[1]);
    return (*A)[0];
  }
  if (Act == actDelObj()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 1);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "delObj");
    if (!L)
      return Err(L.error());
    Heap.erase(*L);
    Meta.erase(*L);
    Deleted.set(*L, true);
    return Value::boolV(true);
  }
  if (Act == actGetProp()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "getProp");
    if (!L)
      return Err(L.error());
    if (!(*A)[1].isStr())
      return Err("TypeError: property name " + (*A)[1].toString() +
                 " is not a string");
    const Value *V = Heap.lookup(*L)->lookup((*A)[1].asStr());
    return V ? *V : jsUndefined();
  }
  if (Act == actSetProp()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 3);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "setProp");
    if (!L)
      return Err(L.error());
    if (!(*A)[1].isStr())
      return Err("TypeError: property name " + (*A)[1].toString() +
                 " is not a string");
    setProp(*L, (*A)[1].asStr(), (*A)[2]);
    return (*A)[2];
  }
  if (Act == actDelProp()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "delProp");
    if (!L)
      return Err(L.error());
    if (!(*A)[1].isStr())
      return Err("TypeError: property name is not a string");
    PropMap Props = *Heap.lookup(*L);
    Props.erase((*A)[1].asStr()); // deleting an absent property is a no-op
    Heap.set(*L, std::move(Props));
    return Value::boolV(true);
  }
  if (Act == actHasProp()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "hasProp");
    if (!L)
      return Err(L.error());
    if (!(*A)[1].isStr())
      return Err("TypeError: property name is not a string");
    return Value::boolV(Heap.lookup(*L)->contains((*A)[1].asStr()));
  }
  if (Act == actGetMeta()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 1);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "getMeta");
    if (!L)
      return Err(L.error());
    const Value *V = Meta.lookup(*L);
    return V ? *V : jsUndefined();
  }
  if (Act == actSetMeta()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "setMeta");
    if (!L)
      return Err(L.error());
    Meta.set(*L, (*A)[1]);
    return (*A)[1];
  }
  return Err("unknown MJS action '" + std::string(Act.str()) + "'");
}

std::string MjsCMem::toString() const {
  std::string Out = "{";
  for (const auto &[Loc, Props] : Heap) {
    Out += " " + std::string(Loc.str()) + " -> {";
    for (const auto &[P, V] : Props)
      Out += " " + std::string(P.str()) + ": " + V.toString() + ";";
    Out += " }";
  }
  return Out + " }";
}

//===----------------------------------------------------------------------===//
// Symbolic memory
//===----------------------------------------------------------------------===//

namespace {

enum class Tri { Yes, No, Maybe };

/// Classifies A == B under PC.
Tri equalUnder(const Expr &A, const Expr &B, const PathCondition &PC,
               Solver &S, Expr &CondOut) {
  Expr C = simplify(Expr::eq(A, B));
  if (C.isTrue())
    return Tri::Yes;
  if (C.isFalse())
    return Tri::No;
  PathCondition Ext = PC;
  Ext.add(C);
  if (!S.maybeSat(Ext))
    return Tri::No;
  CondOut = C;
  return Tri::Maybe;
}

Expr conj(const Expr &A, const Expr &B) { return simplify(Expr::andE(A, B)); }

} // namespace

void MjsSMem::defineObject(const Expr &Loc, Expr MetaVal) {
  Heap.set(Loc, PropMap());
  Meta.set(Loc, std::move(MetaVal));
}

void MjsSMem::setProp(const Expr &Loc, const Expr &P, Expr V) {
  const PropMap *Props = Heap.lookup(Loc);
  PropMap NewProps = Props ? *Props : PropMap();
  NewProps.set(P, std::move(V));
  Heap.set(Loc, std::move(NewProps));
}

/// Per-action context: resolves which stored objects a location expression
/// may denote, handling deletion faults uniformly.
struct MjsSMem::Ctx {
  const MjsSMem &M;
  const PathCondition &PC;
  Solver &S;
  std::vector<SymActionBranch<MjsSMem>> Out;

  /// Condition accumulated so far excluding deleted aliases.
  Expr LiveCond = Expr::boolE(true);
  bool DefinitelyDeleted = false;

  Ctx(const MjsSMem &M, const PathCondition &PC, Solver &S)
      : M(M), PC(PC), S(S) {}

  /// Emits fault branches for deleted-object aliases of \p Loc; afterwards
  /// LiveCond holds the "not any deleted object" constraint.
  void checkDeleted(const Expr &Loc, const char *What) {
    for (const auto &[D, _] : M.Deleted) {
      Expr Cond;
      switch (equalUnder(Loc, D, PC, S, Cond)) {
      case Tri::Yes:
        Out.push_back({M,
                       Expr::strE(std::string("TypeError: ") + What +
                                  " on deleted object"),
                       Expr(), /*IsError=*/true});
        DefinitelyDeleted = true;
        return;
      case Tri::No:
        break;
      case Tri::Maybe:
        Out.push_back({M,
                       Expr::strE(std::string("TypeError: ") + What +
                                  " on deleted object"),
                       Cond, /*IsError=*/true});
        LiveCond = conj(LiveCond, Expr::notE(Cond));
        break;
      }
    }
  }

  /// Calls \p Fn(objectKey, props, takenCond) for every stored object the
  /// location may alias; afterwards emits a fault branch for the
  /// no-object case under \p What.
  template <typename Fn>
  void forEachAlias(const Expr &Loc, const char *What, Fn Body) {
    if (DefinitelyDeleted)
      return;
    Expr MissCond = LiveCond;
    for (const auto &[Key, Props] : M.Heap) {
      Expr Cond;
      Tri T = equalUnder(Loc, Key, PC, S, Cond);
      if (T == Tri::No)
        continue;
      Expr Taken = T == Tri::Yes ? LiveCond : conj(LiveCond, Cond);
      Body(Key, Props, Taken);
      if (T == Tri::Yes)
        return; // definite alias: nothing else reachable
      MissCond = conj(MissCond, Expr::notE(Cond));
    }
    if (MissCond.isFalse())
      return;
    PathCondition Ext = PC;
    Ext.add(MissCond);
    if (S.maybeSat(Ext))
      Out.push_back({M,
                     Expr::strE(std::string("TypeError: ") + What +
                                " on unknown object"),
                     MissCond, /*IsError=*/true});
  }
};

Result<std::vector<SymActionBranch<MjsSMem>>>
MjsSMem::execAction(InternedString Act, const Expr &Arg,
                    const PathCondition &PC, Solver &S) const {
  obs::ActionCounters::bump("mjs", Act);
  // newObj: registration of a freshly-allocated location; never branches.
  if (Act == actNewObj()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 2);
    if (!A)
      return Err(A.error());
    MjsSMem Next = *this;
    Next.defineObject((*A)[0], (*A)[1]);
    std::vector<SymActionBranch<MjsSMem>> Out;
    Out.push_back({std::move(Next), (*A)[0], Expr(), false});
    return Out;
  }

  auto argCount = [&]() -> size_t {
    if (Act == actGetProp() || Act == actDelProp() || Act == actHasProp() ||
        Act == actSetMeta())
      return 2;
    if (Act == actSetProp())
      return 3;
    return 1; // delObj / getMeta
  };
  Result<std::vector<Expr>> A = splitArgsE(Arg, argCount());
  if (!A)
    return Err(A.error());
  const Expr &Loc = (*A)[0];

  Ctx C(*this, PC, S);
  std::string ActName(Act.str());
  C.checkDeleted(Loc, ActName.c_str());

  if (Act == actGetProp()) {
    const Expr &P = (*A)[1];
    C.forEachAlias(Loc, "getProp", [&](const Expr &Key,
                                       const PropMap &Props,
                                       const Expr &Taken) {
      // [SGetProp]: branch over stored properties this name may equal.
      Expr Absent = Taken;
      for (const auto &[PK, V] : Props) {
        Expr Cond;
        Tri T = equalUnder(P, PK, PC, S, Cond);
        if (T == Tri::No)
          continue;
        Expr Br = T == Tri::Yes ? Taken : conj(Taken, Cond);
        C.Out.push_back({*this, V, Br, false});
        if (T == Tri::Yes) {
          Absent = Expr::boolE(false);
          break;
        }
        Absent = conj(Absent, Expr::notE(Cond));
      }
      // Absent property on an existing object: undefined (JS semantics).
      if (!Absent.isFalse()) {
        PathCondition Ext = PC;
        Ext.add(Absent);
        if (S.maybeSat(Ext))
          C.Out.push_back({*this, Expr::lit(jsUndefined()), Absent, false});
      }
      (void)Key;
    });
    return C.Out;
  }

  if (Act == actSetProp()) {
    const Expr &P = (*A)[1];
    const Expr &V = (*A)[2];
    C.forEachAlias(Loc, "setProp", [&](const Expr &Key,
                                       const PropMap &Props,
                                       const Expr &Taken) {
      Expr Fresh = Taken;
      for (const auto &[PK, Old] : Props) {
        (void)Old;
        Expr Cond;
        Tri T = equalUnder(P, PK, PC, S, Cond);
        if (T == Tri::No)
          continue;
        MjsSMem Next = *this;
        Next.setProp(Key, PK, V);
        Expr Br = T == Tri::Yes ? Taken : conj(Taken, Cond);
        C.Out.push_back({std::move(Next), V, Br, false});
        if (T == Tri::Yes) {
          Fresh = Expr::boolE(false);
          break;
        }
        Fresh = conj(Fresh, Expr::notE(Cond));
      }
      if (!Fresh.isFalse()) {
        PathCondition Ext = PC;
        Ext.add(Fresh);
        if (S.maybeSat(Ext)) {
          MjsSMem Next = *this;
          Next.setProp(Key, P, V);
          C.Out.push_back({std::move(Next), V, Fresh, false});
        }
      }
    });
    return C.Out;
  }

  if (Act == actDelProp()) {
    const Expr &P = (*A)[1];
    C.forEachAlias(Loc, "delProp", [&](const Expr &Key,
                                       const PropMap &Props,
                                       const Expr &Taken) {
      Expr Untouched = Taken;
      for (const auto &[PK, Old] : Props) {
        (void)Old;
        Expr Cond;
        Tri T = equalUnder(P, PK, PC, S, Cond);
        if (T == Tri::No)
          continue;
        MjsSMem Next = *this;
        PropMap NewProps = Props;
        NewProps.erase(PK);
        Next.Heap.set(Key, std::move(NewProps));
        Expr Br = T == Tri::Yes ? Taken : conj(Taken, Cond);
        C.Out.push_back({std::move(Next), Expr::boolE(true), Br, false});
        if (T == Tri::Yes) {
          Untouched = Expr::boolE(false);
          break;
        }
        Untouched = conj(Untouched, Expr::notE(Cond));
      }
      if (!Untouched.isFalse()) {
        PathCondition Ext = PC;
        Ext.add(Untouched);
        if (S.maybeSat(Ext))
          C.Out.push_back({*this, Expr::boolE(true), Untouched, false});
      }
    });
    return C.Out;
  }

  if (Act == actHasProp()) {
    const Expr &P = (*A)[1];
    C.forEachAlias(Loc, "hasProp", [&](const Expr &Key,
                                       const PropMap &Props,
                                       const Expr &Taken) {
      (void)Key;
      Expr Absent = Taken;
      for (const auto &[PK, Old] : Props) {
        (void)Old;
        Expr Cond;
        Tri T = equalUnder(P, PK, PC, S, Cond);
        if (T == Tri::No)
          continue;
        Expr Br = T == Tri::Yes ? Taken : conj(Taken, Cond);
        C.Out.push_back({*this, Expr::boolE(true), Br, false});
        if (T == Tri::Yes) {
          Absent = Expr::boolE(false);
          break;
        }
        Absent = conj(Absent, Expr::notE(Cond));
      }
      if (!Absent.isFalse()) {
        PathCondition Ext = PC;
        Ext.add(Absent);
        if (S.maybeSat(Ext))
          C.Out.push_back({*this, Expr::boolE(false), Absent, false});
      }
    });
    return C.Out;
  }

  if (Act == actDelObj()) {
    C.forEachAlias(Loc, "delObj", [&](const Expr &Key, const PropMap &Props,
                                      const Expr &Taken) {
      (void)Props;
      MjsSMem Next = *this;
      Next.Heap.erase(Key);
      Next.Meta.erase(Key);
      Next.Deleted.set(Key, true);
      C.Out.push_back({std::move(Next), Expr::boolE(true), Taken, false});
    });
    return C.Out;
  }

  if (Act == actGetMeta()) {
    C.forEachAlias(Loc, "getMeta", [&](const Expr &Key, const PropMap &Props,
                                       const Expr &Taken) {
      (void)Props;
      const Expr *MV = Meta.lookup(Key);
      C.Out.push_back(
          {*this, MV ? *MV : Expr::lit(jsUndefined()), Taken, false});
    });
    return C.Out;
  }

  if (Act == actSetMeta()) {
    const Expr &V = (*A)[1];
    C.forEachAlias(Loc, "setMeta", [&](const Expr &Key, const PropMap &Props,
                                       const Expr &Taken) {
      (void)Props;
      MjsSMem Next = *this;
      Next.Meta.set(Key, V);
      C.Out.push_back({std::move(Next), V, Taken, false});
    });
    return C.Out;
  }

  return Err("unknown MJS action '" + std::string(Act.str()) + "'");
}

std::string MjsSMem::toString() const {
  std::string Out = "{";
  for (const auto &[Loc, Props] : Heap) {
    Out += " " + Loc.toString() + " -> {";
    for (const auto &[P, V] : Props)
      Out += " " + P.toString() + ": " + V.toString() + ";";
    Out += " }";
  }
  return Out + " }";
}

//===----------------------------------------------------------------------===//
// Memory interpretation
//===----------------------------------------------------------------------===//

Result<MjsCMem> gillian::legacy::interpretMemory(const Model &Eps,
                                              const MjsSMem &SMem) {
  MjsCMem Out;
  for (const auto &[LocE, Props] : SMem.heap()) {
    Result<Value> Loc = Eps.eval(LocE);
    if (!Loc)
      return Err("interpretation failure on location " + LocE.toString());
    if (!Loc->isSym())
      return Err("location interprets to a non-symbol: " + Loc->toString());
    if (Out.heap().contains(Loc->asSym()))
      return Err("locations collapse under the model");
    Out.defineObject(Loc->asSym(), jsUndefined());
    for (const auto &[PE, VE] : Props) {
      Result<Value> P = Eps.eval(PE);
      Result<Value> V = Eps.eval(VE);
      if (!P || !V)
        return Err("interpretation failure on property of " +
                   LocE.toString());
      if (!P->isStr())
        return Err("property name interprets to a non-string");
      Out.setProp(Loc->asSym(), P->asStr(), V.take());
    }
  }
  for (const auto &[LocE, MetaE] : SMem.metadata()) {
    Result<Value> Loc = Eps.eval(LocE);
    Result<Value> MV = Eps.eval(MetaE);
    if (!Loc || !MV || !Loc->isSym())
      return Err("interpretation failure on metadata");
    Out.setMetaValue(Loc->asSym(), MV.take());
  }
  for (const auto &[DE, _] : SMem.deleted()) {
    Result<Value> D = Eps.eval(DE);
    if (!D || !D->isSym())
      return Err("interpretation failure on deleted location");
    Out.markDeleted(D->asSym());
  }
  return Out;
}
