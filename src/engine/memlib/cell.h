//===- engine/memlib/cell.h - Leaf cell combinator -------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The leaf of the memory-model algebra: a single mutable cell. Concretely
/// it holds a GIL value, symbolically a logical expression. Like every
/// combinator, it exposes a *paired* concrete/symbolic type, both
/// satisfying the engine's memory-model concepts (Defs 2.3/2.4), plus the
/// §3.3 interpretation from the symbolic side to the concrete side.
///
/// Actions: cget [] and cset [v]. A cell action never branches — all
/// branching in composed models comes from the PMap alias loop and the
/// Freeable liveness guard wrapped around cells.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_MEMLIB_CELL_H
#define GILLIAN_ENGINE_MEMLIB_CELL_H

#include "engine/action_args.h"
#include "engine/memlib/branch.h"
#include "engine/state.h"
#include "solver/model.h"

namespace gillian::memlib {

inline InternedString actCellGet() { return InternedString::get("cget"); }
inline InternedString actCellSet() { return InternedString::get("cset"); }

/// A single expression-valued cell; the default codomain of PMap.
struct ExprCell {
  static bool hasAction(InternedString Act) {
    return Act == actCellGet() || Act == actCellSet();
  }

  class Concrete {
  public:
    Concrete() = default;
    explicit Concrete(Value V) : Val(std::move(V)) {}

    const Value &read() const { return Val; }
    void write(Value V) { Val = std::move(V); }

    Result<Value> execAction(InternedString Act, const Value &Arg) {
      if (Act == actCellGet()) {
        Result<std::vector<Value>> A = splitArgs(Arg, 0);
        if (!A)
          return Err(A.error());
        return Val;
      }
      if (Act == actCellSet()) {
        Result<std::vector<Value>> A = splitArgs(Arg, 1);
        if (!A)
          return Err(A.error());
        Val = (*A)[0];
        return Val;
      }
      return Err("unknown cell action '" + std::string(Act.str()) + "'");
    }

    std::string toString() const { return Val.toString(); }

    friend bool operator==(const Concrete &A, const Concrete &B) {
      return A.Val == B.Val;
    }

  private:
    Value Val;
  };

  class Symbolic {
  public:
    Symbolic() = default;
    explicit Symbolic(Expr E) : Val(std::move(E)) {}

    const Expr &read() const { return Val; }
    void write(Expr E) { Val = std::move(E); }

    Result<std::vector<SymActionBranch<Symbolic>>>
    execAction(InternedString Act, const Expr &Arg, const PathCondition &PC,
               Solver &S) const {
      (void)PC;
      (void)S;
      std::vector<SymActionBranch<Symbolic>> Out;
      if (Act == actCellGet()) {
        Result<std::vector<Expr>> A = splitArgsE(Arg, 0);
        if (!A)
          return Err(A.error());
        Out.push_back({*this, Val, Expr(), false});
        return Out;
      }
      if (Act == actCellSet()) {
        Result<std::vector<Expr>> A = splitArgsE(Arg, 1);
        if (!A)
          return Err(A.error());
        Symbolic Next = *this;
        Next.Val = (*A)[0];
        Out.push_back({std::move(Next), (*A)[0], Expr(), false});
        return Out;
      }
      return Err("unknown cell action '" + std::string(Act.str()) + "'");
    }

    /// I(·) for a cell: evaluate the held expression under ε.
    Result<Concrete> interpret(const Model &Eps) const {
      if (!Val)
        return Concrete();
      Result<Value> V = Eps.eval(Val);
      if (!V)
        return Err("interpretation failure on cell " + Val.toString() +
                   ": " + V.error());
      return Concrete(V.take());
    }

    std::string toString() const {
      return Val ? Val.toString() : std::string("<unset>");
    }

    friend bool operator==(const Symbolic &A, const Symbolic &B) {
      if (!A.Val || !B.Val)
        return !A.Val && !B.Val;
      return A.Val == B.Val;
    }

  private:
    Expr Val;
  };
};

static_assert(ConcreteMemoryModel<ExprCell::Concrete>);
static_assert(SymbolicMemoryModel<ExprCell::Symbolic>);

} // namespace gillian::memlib

#endif // GILLIAN_ENGINE_MEMLIB_CELL_H
