//===- support/result.h - Lightweight expected<T> --------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Result<T>: a value or a string diagnostic. Used for fallible parsing,
/// compilation and expression evaluation; the engine itself reports
/// failures through GIL outcomes rather than through Result.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SUPPORT_RESULT_H
#define GILLIAN_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gillian {

/// A distinct wrapper so Result<std::string> stays unambiguous.
struct Err {
  std::string Message;
  explicit Err(std::string Msg) : Message(std::move(Msg)) {}
};

/// A value of type T or an error message.
template <typename T> class Result {
public:
  Result(T Val) : Val(std::move(Val)) {}
  Result(Err E) : Error(std::move(E.Message)) {}

  explicit operator bool() const { return Val.has_value(); }
  bool ok() const { return Val.has_value(); }

  T &operator*() {
    assert(ok() && "dereferencing an error Result");
    return *Val;
  }
  const T &operator*() const {
    assert(ok() && "dereferencing an error Result");
    return *Val;
  }
  T *operator->() {
    assert(ok() && "dereferencing an error Result");
    return &*Val;
  }
  const T *operator->() const {
    assert(ok() && "dereferencing an error Result");
    return &*Val;
  }

  const std::string &error() const {
    assert(!ok() && "no error on a success Result");
    return Error;
  }

  T take() {
    assert(ok() && "taking from an error Result");
    return std::move(*Val);
  }

private:
  std::optional<T> Val;
  std::string Error;
};

} // namespace gillian

#endif // GILLIAN_SUPPORT_RESULT_H
