//===- bench/bench_solver.cpp ---------------------------------------------===//
//
// Micro-benchmarks of the first-order solver layers (google-benchmark):
// simplification, simplification memo, syntactic SAT, Z3 round-trips and
// the result cache. These support the timing claims of Tables 1/2 —
// solver work dominates symbolic execution time.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "gil/parser.h"
#include "obs/json_writer.h"
#include "solver/solver.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace gillian;

namespace {

Expr parse(const char *S) {
  Result<Expr> R = parseGilExpr(S);
  if (!R)
    std::abort();
  return *R;
}

PathCondition typicalPc() {
  PathCondition PC;
  PC.add(parse("typeof(#x) == ^Int"));
  PC.add(parse("typeof(#y) == ^Int"));
  PC.add(parse("0 <= #x"));
  PC.add(parse("#x < 32"));
  PC.add(parse("#y == #x + 1"));
  PC.add(parse("!(#y == 7)"));
  return PC;
}

/// The path-growth query chain: condition k extends condition k-1 by one
/// fresh-variable link (#c_k == #c_{k-1} + 1), the shape a symbolic path
/// produces between branch points.
std::vector<PathCondition> prefixGrowthChain(int Len) {
  std::vector<PathCondition> Chain;
  PathCondition PC;
  PC.add(parse("typeof(#c0) == ^Int"));
  PC.add(parse("0 <= #c0"));
  Chain.push_back(PC);
  for (int I = 1; I < Len; ++I) {
    std::string V = "#c" + std::to_string(I);
    std::string U = "#c" + std::to_string(I - 1);
    PC.add(parse(("typeof(" + V + ") == ^Int").c_str()));
    PC.add(parse((V + " == " + U + " + 1").c_str()));
    Chain.push_back(PC);
  }
  return Chain;
}

/// One pass over the chain with every layer but Z3 disabled, so the cost
/// is purely encode+assert+check; returns the solver's stats.
SolverStats runPrefixChain(bool Incremental, int Len) {
  SolverOptions Opts;
  Opts.UseCache = false;
  Opts.UseSyntactic = false;
  Opts.UseSlicing = false;
  Opts.UseIncremental = Incremental;
  Solver S(Opts);
  for (const PathCondition &Q : prefixGrowthChain(Len))
    benchmark::DoNotOptimize(S.checkSat(Q));
  return S.stats();
}

} // namespace

static void BM_SimplifyOffsetChain(benchmark::State &State) {
  TypeEnv Env;
  Env.assign(InternedString::get("#p"), GilType::Int);
  Expr E = parse("((((#p + 8) + 8) + 16) + 8) == 48");
  for (auto _ : State)
    benchmark::DoNotOptimize(simplify(E, &Env));
}
BENCHMARK(BM_SimplifyOffsetChain);

static void BM_SimplifyCachedHit(benchmark::State &State) {
  TypeEnv Env;
  Env.assign(InternedString::get("#p"), GilType::Int);
  Expr E = parse("((((#p + 8) + 8) + 16) + 8) == 48");
  simplifyCached(E, &Env); // warm
  for (auto _ : State)
    benchmark::DoNotOptimize(simplifyCached(E, &Env));
}
BENCHMARK(BM_SimplifyCachedHit);

static void BM_SimplifyListDecomposition(benchmark::State &State) {
  Expr E = parse("[$a, #x + 4] == [$a, 12]");
  for (auto _ : State)
    benchmark::DoNotOptimize(simplify(E));
}
BENCHMARK(BM_SimplifyListDecomposition);

static void BM_SyntacticSatTypical(benchmark::State &State) {
  PathCondition PC = typicalPc();
  for (auto _ : State)
    benchmark::DoNotOptimize(checkSatSyntactic(PC));
}
BENCHMARK(BM_SyntacticSatTypical);

static void BM_SyntacticUnsatConflict(benchmark::State &State) {
  PathCondition PC = typicalPc();
  PC.add(parse("#x == 40"));
  for (auto _ : State)
    benchmark::DoNotOptimize(checkSatSyntactic(PC));
}
BENCHMARK(BM_SyntacticUnsatConflict);

static void BM_SolverCachedQuery(benchmark::State &State) {
  Solver S;
  PathCondition PC = typicalPc();
  S.checkSat(PC); // warm the cache
  for (auto _ : State)
    benchmark::DoNotOptimize(S.checkSat(PC));
}
BENCHMARK(BM_SolverCachedQuery);

static void BM_SolverPermutedOrderCacheHit(benchmark::State &State) {
  // Branch interleavings produce the same conjunct set in different
  // orders; the canonical form makes every permutation a cache hit.
  Solver S;
  PathCondition PC = typicalPc();
  S.checkSat(PC); // warm the cache with one order
  PathCondition Reversed;
  Reversed.add(parse("!(#y == 7)"));
  Reversed.add(parse("#y == #x + 1"));
  Reversed.add(parse("#x < 32"));
  Reversed.add(parse("0 <= #x"));
  Reversed.add(parse("typeof(#y) == ^Int"));
  Reversed.add(parse("typeof(#x) == ^Int"));
  for (auto _ : State)
    benchmark::DoNotOptimize(S.checkSat(Reversed));
}
BENCHMARK(BM_SolverPermutedOrderCacheHit);

static void BM_SolverSlicedSupersetQuery(benchmark::State &State) {
  // The path-growth shape: a superset query with one fresh-variable slice
  // reuses the cached verdicts of the old slices and only decides the new
  // one. The added conjunct varies per iteration so the full key is never
  // a whole-query cache hit and the slicing path stays on.
  Solver S;
  PathCondition PC;
  for (int I = 0; I < 8; ++I) {
    std::string V = "#s" + std::to_string(I);
    PC.add(parse(("typeof(" + V + ") == ^Int").c_str()));
    PC.add(parse(("0 <= " + V).c_str()));
  }
  S.checkSat(PC); // warm the slice cache
  Expr Fresh = Expr::lvar("#fresh");
  Expr IntTy = Expr::hasType(Fresh, GilType::Int);
  int64_t K = 0;
  for (auto _ : State) {
    PathCondition Super = PC;
    Super.add(IntTy);
    Super.add(Expr::eq(Fresh, Expr::intE(++K)));
    benchmark::DoNotOptimize(S.checkSat(Super));
  }
}
BENCHMARK(BM_SolverSlicedSupersetQuery);

static void BM_SolverUncachedSyntactic(benchmark::State &State) {
  SolverOptions Opts;
  Opts.UseCache = false;
  Opts.UseZ3 = false;
  Solver S(Opts);
  PathCondition PC = typicalPc();
  PC.add(parse("#x == 40")); // syntactic UNSAT
  for (auto _ : State)
    benchmark::DoNotOptimize(S.checkSat(PC));
}
BENCHMARK(BM_SolverUncachedSyntactic);

static void BM_Z3RoundTrip(benchmark::State &State) {
  SolverOptions Opts;
  Opts.UseCache = false;
  Opts.UseSyntactic = false; // force the SMT layer
  Solver S(Opts);
  PathCondition PC;
  PC.add(parse("typeof(#x) == ^Int"));
  PC.add(parse("typeof(#y) == ^Int"));
  PC.add(parse("#x + #y == 10"));
  PC.add(parse("#x - #y == 4"));
  for (auto _ : State)
    benchmark::DoNotOptimize(S.checkSat(PC));
}
BENCHMARK(BM_Z3RoundTrip);

static void BM_SolverSharedCacheHitThreaded(benchmark::State &State) {
  // N threads hammer ONE solver backed by the sharded concurrent cache
  // with the same repeated query — the parallel scheduler's hot shape
  // (branch-feasibility checks repeat across sibling paths). Scaling here
  // is pure concurrent-read throughput of the cache shards.
  static SolverCache Shared;
  static Solver S(SolverOptions(), Shared);
  PathCondition PC = typicalPc();
  S.checkSat(PC); // warm (first thread pays, the rest hit)
  for (auto _ : State)
    benchmark::DoNotOptimize(S.checkSat(PC));
}
BENCHMARK(BM_SolverSharedCacheHitThreaded)->ThreadRange(1, 8)->UseRealTime();

static void BM_SolverSharedCacheInsertThreaded(benchmark::State &State) {
  // Every iteration of every thread issues a distinct superset query:
  // concurrent slice-cache lookups plus insertions, exercising shard
  // mutex contention on the write path.
  static SolverCache Shared;
  static Solver S(SolverOptions(), Shared);
  PathCondition PC = typicalPc();
  Expr Fresh = Expr::lvar("#t");
  Expr IntTy = Expr::hasType(Fresh, GilType::Int);
  int64_t K = static_cast<int64_t>(State.thread_index()) * 1'000'000'000;
  for (auto _ : State) {
    PathCondition Super = PC;
    Super.add(IntTy);
    Super.add(Expr::eq(Fresh, Expr::intE(++K)));
    benchmark::DoNotOptimize(S.checkSat(Super));
  }
}
BENCHMARK(BM_SolverSharedCacheInsertThreaded)
    ->ThreadRange(1, 8)
    ->UseRealTime();

static void BM_IncrementalPrefixChain(benchmark::State &State) {
  // 24 queries, each extending the previous by one conjunct link. With
  // incremental sessions (Arg 1) each query pushes only its delta against
  // the thread's asserted prefix; without (Arg 0) every query re-encodes
  // and re-asserts all of its conjuncts. Cache/syntactic/slicing layers
  // are off so the difference is pure Z3 re-assertion work.
  const bool Incremental = State.range(0) != 0;
  const int Len = 24;
  SolverOptions Opts;
  Opts.UseCache = false;
  Opts.UseSyntactic = false;
  Opts.UseSlicing = false;
  Opts.UseIncremental = Incremental;
  Solver S(Opts);
  std::vector<PathCondition> Chain = prefixGrowthChain(Len);
  for (auto _ : State)
    for (const PathCondition &Q : Chain)
      benchmark::DoNotOptimize(S.checkSat(Q));
  State.SetLabel(Incremental ? "incremental" : "cold re-assert");
  State.counters["inc_session_hit_rate"] = S.stats().sessionHitRate();
  State.counters["inc_reused_conjuncts_per_iter"] =
      benchmark::Counter(static_cast<double>(S.stats().IncReusedConjuncts),
                         benchmark::Counter::kAvgIterations);
  State.counters["encode_memo_hits_per_iter"] =
      benchmark::Counter(static_cast<double>(S.stats().EncodeMemoHits),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_IncrementalPrefixChain)->Arg(0)->Arg(1);

static void BM_NativeDiseqChain(benchmark::State &State) {
  // The bst/pqueue outlier shape (EXPERIMENTS.md): Num-typed variables in
  // a bounded real window, pairwise distinct. The syntactic layer's single
  // model proposal collides on the disequalities, so without the native
  // layer (Arg 0) every iteration is a full Z3 round-trip; with it (Arg 1)
  // the query is decided in-process with a verified model and Z3 is never
  // reached — the z3_calls_per_iter counter proves it.
  const bool Native = State.range(0) != 0;
  SolverOptions Opts;
  Opts.UseCache = false; // every iteration must reach the decision layers
  Opts.UseNative = Native;
  Solver S(Opts);
  // 64 structurally identical queries over disjoint variable sets, cycled:
  // every check is fresh to the incremental session's asserted prefix and
  // to the native frame store alike — the regime exploration produces
  // (each branch point asks a new condition once).
  std::vector<PathCondition> Queries;
  for (int G = 0; G < 64; ++G) {
    PathCondition PC;
    for (int I = 0; I < 6; ++I) {
      std::string V = "#k" + std::to_string(G) + "_" + std::to_string(I);
      PC.add(parse(("0.5 <= " + V).c_str()));
      PC.add(parse((V + " < 100.0").c_str()));
      for (int J = 0; J < I; ++J)
        PC.add(parse(("!(" + V + " == #k" + std::to_string(G) + "_" +
                      std::to_string(J) + ")")
                         .c_str()));
    }
    Queries.push_back(std::move(PC));
  }
  size_t Q = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.checkSat(Queries[Q++ % Queries.size()]));
  State.SetLabel(Native ? "native" : "no native (Z3 fallback)");
  State.counters["z3_calls_per_iter"] =
      benchmark::Counter(static_cast<double>(S.stats().Z3Calls),
                         benchmark::Counter::kAvgIterations);
  State.counters["native_decided_per_iter"] = benchmark::Counter(
      static_cast<double>(S.stats().NativeSat.load() +
                          S.stats().NativeUnsat.load()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_NativeDiseqChain)->Arg(0)->Arg(1);

static void BM_VerifiedModelExtraction(benchmark::State &State) {
  Solver S;
  PathCondition PC = typicalPc();
  for (auto _ : State)
    benchmark::DoNotOptimize(S.verifiedModel(PC));
}
BENCHMARK(BM_VerifiedModelExtraction);

static void BM_PathConditionGrowth(benchmark::State &State) {
  // Cost of building the long conjunct chains loops produce.
  std::vector<Expr> Conjs;
  for (int I = 0; I < 64; ++I)
    Conjs.push_back(parse(("#i" + std::to_string(I) + " < " +
                           std::to_string(I + 100))
                              .c_str()));
  for (auto _ : State) {
    PathCondition PC;
    for (const Expr &C : Conjs)
      PC.add(C);
    benchmark::DoNotOptimize(PC.size());
  }
}
BENCHMARK(BM_PathConditionGrowth);

// After the google-benchmark report, one machine-readable JSON line
// A/B-ing the prefix-growth chain with incremental sessions on vs. off
// (the layer-2 counters Tables 1/2 report in context).
int main(int argc, char **argv) {
  const gillian::bench::BenchArgs Args =
      gillian::bench::parseBenchArgs(argc, argv);
  gillian::bench::setupObs(Args);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!Args.Json) {
    gillian::bench::finishObs(Args);
    return 0;
  }

  gillian::bench::coldStart();
  SolverStats Off = runPrefixChain(/*Incremental=*/false, 24);
  gillian::bench::coldStart();
  SolverStats On = runPrefixChain(/*Incremental=*/true, 24);
  gillian::obs::JsonWriter W;
  W.beginObject();
  W.field("bench", "solver_micro");
  W.field("workload", "prefix_chain_24");
  // No exploration happens here, but every driver's JSON line carries the
  // strategy label so downstream row joins never special-case this one.
  W.field("strategy", gillian::strategyName(Args.Strategy));
  W.key("inc_off");
  W.raw(solverStatsJson(Off));
  W.key("inc_on");
  W.raw(solverStatsJson(On));
  W.key("obs");
  W.raw(gillian::obs::obsStatsJson(
      gillian::obs::SpanTable::global().snapshot()));
  W.endObject();
  std::printf("\n%s\n", W.take().c_str());
  gillian::bench::finishObs(Args);
  return 0;
}
