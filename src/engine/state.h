//===- engine/state.h - State models and memory liftings -------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's state-model machinery:
///
///  * Def 2.1 (state model): realised as the compile-time interface the
///    GIL interpreter consumes (see the StateModel concept in
///    interpreter.h). C++ class templates play the role of OCaml functors.
///  * Def 2.3 / 2.4 (concrete / symbolic memory models): the
///    ConcreteMemoryModel and SymbolicMemoryModel concepts below, which a
///    tool developer implements for a new target language.
///  * Def 2.5 / 2.6 (state constructors CSC / SSC): the ConcreteState and
///    SymbolicState class templates, which lift a memory model to a proper
///    state model by pairing it with a variable store, one of the built-in
///    allocators and (symbolically) a path condition, and by providing the
///    A_proper actions (setVar / setStore / getStore / eval / assume /
///    uSym / iSym).
///
/// Restriction (§3.1) is implemented on symbolic states as path-condition
/// strengthening plus allocator-record strengthening (restrictWith).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_STATE_H
#define GILLIAN_ENGINE_STATE_H

#include "engine/allocator.h"
#include "engine/options.h"
#include "gil/expr.h"
#include "solver/simplifier.h"
#include "solver/solver.h"
#include "support/cow_map.h"

#include <concepts>
#include <optional>
#include <vector>

namespace gillian {

/// One outcome of a symbolic memory action (the (µ̂', ê', π') triples of
/// Def 2.4). IsError marks language-level memory faults (out-of-bounds,
/// use-after-free, missing property, ...) which the interpreter turns into
/// GIL error outcomes E(Ret) on that branch.
template <typename M> struct SymActionBranch {
  M Mem;
  Expr Ret;
  Expr Cond;            ///< branch condition π' (null or true = no split)
  bool IsError = false;
};

/// Def 2.3: a concrete memory model. Actions execute in place and return
/// the value output; Err(...) is a language-level memory fault (an E
/// outcome, e.g. "lookup of a disposed object"), not an engine failure.
template <typename M>
concept ConcreteMemoryModel =
    std::default_initializable<M> && std::copyable<M> &&
    requires(M Mem, InternedString Act, const Value &Arg) {
      { Mem.execAction(Act, Arg) } -> std::same_as<Result<Value>>;
    };

/// Def 2.4: a symbolic memory model. Actions may branch; each branch
/// carries the condition under which it is taken. The path condition and
/// solver are provided for the "π ∧ π' SAT" side conditions of the action
/// rules (Fig. 3); Err(...) signals malformed action arguments (an engine
/// bug), not a memory fault — faults are IsError branches.
template <typename M>
concept SymbolicMemoryModel =
    std::default_initializable<M> && std::copyable<M> &&
    requires(const M Mem, InternedString Act, const Expr &Arg,
             const PathCondition &PC, Solver &S) {
      {
        Mem.execAction(Act, Arg, PC, S)
      } -> std::same_as<Result<std::vector<SymActionBranch<M>>>>;
    };

/// One outcome of an action at the *state* level.
template <typename St> struct StateBranch {
  St State;
  typename St::ValueT Ret;
  bool IsError = false;
};

//===----------------------------------------------------------------------===//
// Concrete states — CSC (Def 2.5)
//===----------------------------------------------------------------------===//

/// The concrete state constructor: lifts a concrete memory model to a
/// proper state model over GIL values.
template <ConcreteMemoryModel M> class ConcreteState {
public:
  using ValueT = Value;
  using MemT = M;
  using StoreT = CowMap<InternedString, Value>;

  ConcreteState() = default;
  explicit ConcreteState(M Mem) : Mem(std::move(Mem)) {}

  // -- A_proper ----------------------------------------------------------

  Result<Value> evalExpr(const Expr &E) const {
    return E.evalConcrete(
        [this](InternedString X) { return Store.lookup(X); });
  }

  void setVar(InternedString X, Value V) { Store.set(X, std::move(V)); }
  StoreT getStore() const { return Store; }
  void setStore(StoreT S) { Store = std::move(S); }

  /// assume(v): keeps the state iff v is `true` (§2.3). A non-boolean
  /// condition is a GIL type error.
  Result<std::optional<ConcreteState>> assumeValue(const Value &V) const {
    if (!V.isBool())
      return Err("type error: condition " + V.toString() + " is not a Bool");
    if (!V.asBool())
      return std::optional<ConcreteState>();
    return std::optional<ConcreteState>(*this);
  }

  Value allocUSym(uint32_t Site) { return Alloc.allocUSym(Site); }
  Value allocISym(uint32_t Site) { return Alloc.allocISym(Site); }

  Result<std::vector<StateBranch<ConcreteState>>>
  execAction(InternedString Act, const Value &Arg) const {
    ConcreteState Next = *this;
    Result<Value> R = Next.Mem.execAction(Act, Arg);
    std::vector<StateBranch<ConcreteState>> Out;
    if (!R) {
      // Memory faults surface as error branches carrying the message.
      Out.push_back({*this, Value::strV(R.error()), /*IsError=*/true});
      return Out;
    }
    Out.push_back({std::move(Next), R.take(), /*IsError=*/false});
    return Out;
  }

  /// Extracts a procedure identifier from an evaluated callee (Proc values
  /// and Str values both denote procedures, as front ends call by name).
  std::optional<InternedString> asProcId(const Value &V) const {
    if (V.isProc())
      return V.asProc();
    if (V.isStr())
      return V.asStr();
    return std::nullopt;
  }

  static Value errorValue(const std::string &Msg) {
    return Value::strV(Msg);
  }

  M &memory() { return Mem; }
  const M &memory() const { return Mem; }
  ConcreteAllocator &allocator() { return Alloc; }
  const ConcreteAllocator &allocator() const { return Alloc; }
  const StoreT &store() const { return Store; }

private:
  M Mem;
  StoreT Store;
  ConcreteAllocator Alloc;
};

//===----------------------------------------------------------------------===//
// Symbolic states — SSC (Def 2.6)
//===----------------------------------------------------------------------===//

/// The symbolic state constructor: lifts a symbolic memory model to a
/// proper state model over logical expressions, adding a path condition.
/// The solver and engine options are shared across the states of one run.
template <SymbolicMemoryModel M> class SymbolicState {
public:
  using ValueT = Expr;
  using MemT = M;
  using StoreT = CowMap<InternedString, Expr>;

  SymbolicState() = default;
  SymbolicState(M Mem, Solver *Slv, const EngineOptions *Opts)
      : Mem(std::move(Mem)), Slv(Slv), Opts(Opts) {}

  // -- A_proper ----------------------------------------------------------

  /// [EvalExpr] of §2.3: substitute program variables by their store
  /// expressions, then simplify (when enabled).
  Result<Expr> evalExpr(const Expr &E) const {
    std::string Unbound;
    Expr S = E.substPVars([&](InternedString X) -> Expr {
      const Expr *B = Store.lookup(X);
      if (!B && Unbound.empty())
        Unbound = std::string(X.str());
      return B ? *B : Expr();
    });
    if (!S)
      return Err("unbound program variable '" + Unbound + "'");
    return simplified(S);
  }

  void setVar(InternedString X, Expr E) { Store.set(X, std::move(E)); }
  StoreT getStore() const { return Store; }
  void setStore(StoreT S) { Store = std::move(S); }

  /// assume(π'): strengthens the path condition and keeps the state iff
  /// π ∧ π' is not provably unsatisfiable (§2.3).
  Result<std::optional<SymbolicState>> assumeValue(const Expr &Cond) const {
    Expr C = simplified(Cond);
    if (C.isFalse())
      return std::optional<SymbolicState>();
    SymbolicState Next = *this;
    Next.addConjunct(C);
    if (Next.PC.isTriviallyFalse() || !Slv->maybeSat(Next.PC))
      return std::optional<SymbolicState>();
    return std::optional<SymbolicState>(std::move(Next));
  }

  Expr allocUSym(uint32_t Site) {
    return Expr::lit(Alloc.allocUSym(Site));
  }
  Expr allocISym(uint32_t Site) { return Alloc.allocISym(Site); }

  Result<std::vector<StateBranch<SymbolicState>>>
  execAction(InternedString Act, const Expr &Arg) const {
    Result<std::vector<SymActionBranch<M>>> Branches =
        Mem.execAction(Act, Arg, PC, *Slv);
    if (!Branches)
      return Err(Branches.error());
    std::vector<StateBranch<SymbolicState>> Out;
    Out.reserve(Branches->size());
    for (SymActionBranch<M> &B : *Branches) {
      SymbolicState Next = *this;
      Next.Mem = std::move(B.Mem);
      if (B.Cond) {
        Expr C = simplified(B.Cond);
        if (C.isFalse())
          continue;
        Next.addConjunct(C);
        if (Next.PC.isTriviallyFalse())
          continue;
      }
      Out.push_back({std::move(Next), simplified(B.Ret), B.IsError});
    }
    return Out;
  }

  std::optional<InternedString> asProcId(const Expr &V) const {
    if (!V.isLit())
      return std::nullopt;
    const Value &L = V.litValue();
    if (L.isProc())
      return L.asProc();
    if (L.isStr())
      return L.asStr();
    return std::nullopt;
  }

  static Expr errorValue(const std::string &Msg) { return Expr::strE(Msg); }

  // -- Symbolic-only surface ----------------------------------------------

  const PathCondition &pathCondition() const { return PC; }
  void addToPathCondition(const Expr &E) { addConjunct(simplified(E)); }

  /// Splices an *already-simplified* conjunct recorded by the procedure
  /// summary cache (engine/summary/): absorbs its typing facts and adds
  /// it to the path condition with no re-simplification and no
  /// feasibility check — replay re-runs assumeValue's full-condition
  /// maybeSat itself, batch by batch, at the exact points re-execution
  /// would have queried (Interpreter::spliceFeasible).
  void spliceConjunct(const Expr &E) { addConjunct(E); }

  /// The type assignment harvested from this state's path condition;
  /// drives type-guarded simplification and is reused by the solver.
  const TypeEnv &typeEnv() const { return Types; }

  /// Restriction (§3.1): σ ⇃σ' strengthens this state with the path
  /// condition and allocation knowledge of \p Other, leaving store and
  /// memory untouched (Def 3.9's lifted restriction).
  void restrictWith(const SymbolicState &Other) {
    for (const Expr &C : Other.PC.conjuncts())
      absorbConjunct(C, Types);
    PC.addAll(Other.PC);
    Alloc.record().restrictWith(Other.Alloc.record());
  }

  /// The ⊑ pre-order induced by restriction.
  bool refines(const SymbolicState &Other) const {
    return PC.contains(Other.PC) &&
           Alloc.record().refines(Other.Alloc.record());
  }

  M &memory() { return Mem; }
  const M &memory() const { return Mem; }
  SymbolicAllocator &allocator() { return Alloc; }
  const SymbolicAllocator &allocator() const { return Alloc; }
  const StoreT &store() const { return Store; }
  Solver &solver() const { return *Slv; }
  const EngineOptions &options() const { return *Opts; }

private:
  Expr simplified(const Expr &E) const {
    if (!Opts || !Opts->UseSimplifier)
      return E;
    return Opts->UseSimplifierCache ? simplifyCached(E, &Types)
                                    : simplify(E, &Types);
  }

  /// Adds a conjunct, harvesting its typing facts first so later
  /// simplification benefits from them.
  void addConjunct(const Expr &C) {
    absorbConjunct(C, Types);
    PC.add(C);
  }

  M Mem;
  StoreT Store;
  SymbolicAllocator Alloc;
  PathCondition PC;
  TypeEnv Types;
  Solver *Slv = nullptr;
  const EngineOptions *Opts = nullptr;
};

} // namespace gillian

#endif // GILLIAN_ENGINE_STATE_H
