//===- engine/action_args.h - Action argument destructuring ----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Actions take a single GIL value; compilers pass argument lists (e.g.
/// `lookup([e, p])`, Fig. 2). These helpers destructure such lists, both
/// concretely (Value) and symbolically (Expr, where the list may be a List
/// node or a literal list value).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_ACTION_ARGS_H
#define GILLIAN_ENGINE_ACTION_ARGS_H

#include "gil/expr.h"
#include "support/result.h"

#include <vector>

namespace gillian {

/// Splits a concrete action argument into exactly \p N values.
inline Result<std::vector<Value>> splitArgs(const Value &Arg, size_t N) {
  if (!Arg.isList() || Arg.asList().size() != N)
    return Err("action expects a " + std::to_string(N) +
               "-element argument list, got " + Arg.toString());
  return Arg.asList();
}

/// Splits a symbolic action argument into exactly \p N expressions.
inline Result<std::vector<Expr>> splitArgsE(const Expr &Arg, size_t N) {
  std::vector<Expr> Out;
  if (Arg.kind() == ExprKind::List) {
    for (size_t I = 0, M = Arg.numChildren(); I != M; ++I)
      Out.push_back(Arg.child(I));
  } else if (Arg.isLit() && Arg.litValue().isList()) {
    for (const Value &V : Arg.litValue().asList())
      Out.push_back(Expr::lit(V));
  } else {
    return Err("action expects an argument list, got " + Arg.toString());
  }
  if (Out.size() != N)
    return Err("action expects a " + std::to_string(N) +
               "-element argument list, got " + Arg.toString());
  return Out;
}

/// Extracts a concrete string from an expression (property names are
/// concrete in the While and MC instantiations).
inline Result<InternedString> concreteStr(const Expr &E) {
  if (E.isLit() && E.litValue().isStr())
    return E.litValue().asStr();
  return Err("expected a concrete string, got " + E.toString());
}

} // namespace gillian

#endif // GILLIAN_ENGINE_ACTION_ARGS_H
