//===- solver/solver.h - Layered first-order solver ------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first-order solver behind the symbolic engine's SAT checks (the
/// "π ∧ π' SAT" side conditions of Def 2.6 and the action rules). It is
/// layered — simplification happens upstream, then the result cache, then
/// independence slicing, then the syntactic core, then Z3 (through the
/// per-thread incremental session pool when enabled, the cold re-encode
/// backend otherwise) — and every layer can be disabled to reproduce the
/// JaVerT 2.0 baseline configuration ("better simplifications and better
/// caching of results", §4.1). DESIGN.md §4b describes the three-layer
/// result path (result cache → incremental session → cold encode).
///
/// Caching is built on the *canonical form* of path conditions (sorted,
/// deduplicated conjuncts), so cache keys are insertion-order-insensitive.
/// On a cache miss the query is sliced into variable-connected components;
/// each slice is answered from the cache or the syntactic core on its own,
/// and only undecided slices pay a Z3 round-trip. A superset query whose
/// new conjuncts touch fresh variables — the common shape along a symbolic
/// path — then costs one small slice instead of a full re-solve. Only
/// Sat/Unsat verdicts are cached: Unknown is retriable (a later identical
/// query may be decided once Z3 or a verified syntactic model succeeds).
///
/// Unknown is treated as possibly-satisfiable by the engine (sound for
/// bounded symbolic testing: it keeps paths alive). Bug reports are gated
/// on a *verified* counter-model, so the no-false-positives guarantee of
/// §3 survives solver incompleteness.
///
/// The Solver is *thread-safe*: its result cache is the sharded concurrent
/// SolverCache, its statistics are relaxed atomics, and the Z3 backend
/// keeps one context per thread (Z3 contexts are not thread-safe). One
/// Solver instance can therefore be shared by every worker of the parallel
/// exploration scheduler — which is required, since symbolic states carry
/// a Solver pointer and migrate between workers when stolen.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_SOLVER_H
#define GILLIAN_SOLVER_SOLVER_H

#include "obs/counters.h"
#include "solver/model.h"
#include "solver/path_condition.h"
#include "solver/solver_cache.h"
#include "solver/syntactic.h"

#include <memory>
#include <optional>
#include <string>

namespace gillian {

struct SolverOptions {
  bool UseCache = true;
  bool UseSyntactic = true;
  bool UseZ3 = true;
  /// Partition queries into variable-disjoint slices answered (and cached)
  /// independently. Sound because slices share no logical variables: the
  /// conjunction is Unsat iff a slice is, and Sat when every slice is.
  bool UseSlicing = true;
  /// Answer undecided queries through the per-thread incremental session
  /// pool (scoped Z3 push/pop over the asserted path-condition prefix)
  /// instead of the cold re-encode-everything backend. Layer 2 of the
  /// solver stack; verdict-identical to the cold path (see DESIGN.md §4b).
  bool UseIncremental = true;
  /// Fraction of a query's conjuncts a session must already assert for a
  /// diverging query to pop frame-by-frame in place; below it the session
  /// resets entirely (fresh solver, memoised re-encode).
  double IncrementalResetThreshold = 0.25;
  /// Try the native theory layer (src/solver/native/) on queries the
  /// syntactic core leaves undecided, before any Z3 round-trip. The layer
  /// decides the boolean/equality/disequality skeleton natively and
  /// answers Unknown on anything arithmetic, so disabling it only moves
  /// work back to Z3 — verdicts are identical by construction.
  bool UseNative = true;
  /// When > 0, route undecided full queries through the process-wide async
  /// solver service: a pool of that many solver threads with a bounded
  /// submission queue that batches and deduplicates in-flight identical or
  /// subsumed queries across scheduler workers. 0 = solve inline.
  uint32_t AsyncSolvers = 0;

  /// The paper's baseline configuration: no result caching, no slicing,
  /// no incremental sessions (JaVerT 2.0 had its own first-order layer,
  /// so the syntactic core stays on — the improvements §4.1 credits are
  /// "better simplifications and better caching of results").
  static SolverOptions legacyJaVerT2() {
    SolverOptions O;
    O.UseCache = false;
    O.UseSlicing = false;
    O.UseIncremental = false;
    return O;
  }
};

/// Per-layer decision counts and wall-times of one Solver. Wall-times are
/// nanoseconds of std::chrono::steady_clock; under the parallel scheduler
/// they accumulate *across* workers, so they measure cumulative solver
/// effort, not elapsed wall-clock.
///
/// SolverStats is an obs::CounterSet: every counter self-registers its
/// JSON key and layer category, so copy / merge / delta / JSON emission
/// are schema walks (solverStatsJson appends only the derived rates).
/// Counters are relaxed atomics so concurrent workers hitting one shared
/// Solver sum exactly (no lost increments); copies and arithmetic
/// (snapshot, +=, -) read and write with relaxed ordering — they are meant
/// for quiescent aggregation points, not for cross-thread synchronisation.
struct SolverStats : obs::CounterSet<SolverStats> {
  obs::Counter Queries{*this, "queries", "solver"};
  /// Empty / trivially-false queries.
  obs::Counter TrivialAnswers{*this, "trivial", "solver"};

  // Cache layer (canonical full-query keys and per-slice keys).
  obs::Counter CacheLookups{*this, "cache_lookups", "cache"};
  obs::Counter CacheHits{*this, "cache_hits", "cache"}; ///< full-query hits
  obs::Counter SliceCacheLookups{*this, "slice_cache_lookups", "cache"};
  obs::Counter SliceCacheHits{*this, "slice_cache_hits", "cache"};

  // Slicing layer.
  /// Queries split into >= 2 slices.
  obs::Counter SlicedQueries{*this, "sliced_queries", "slice"};
  obs::Counter Slices{*this, "slices", "slice"}; ///< slices examined

  // Syntactic core and SMT layers.
  obs::Counter SyntacticUnsat{*this, "syntactic_unsat", "syntactic"};
  /// Verified syntactic models.
  obs::Counter SyntacticSat{*this, "syntactic_sat", "syntactic"};
  obs::Counter Z3Calls{*this, "z3_calls", "z3"};

  // Incremental session layer (scoped Z3 push/pop; layer 2).
  /// Queries routed to a session.
  obs::Counter IncQueries{*this, "inc_queries", "incremental"};
  /// Answered on a reused prefix.
  obs::Counter IncExtends{*this, "inc_extends", "incremental"};
  /// Discarded the asserted prefix.
  obs::Counter IncResets{*this, "inc_resets", "incremental"};
  /// Scopes popped (divergence).
  obs::Counter IncPoppedFrames{*this, "inc_popped_frames", "incremental"};
  /// Conjuncts not re-asserted.
  obs::Counter IncReusedConjuncts{*this, "inc_reused_conjuncts",
                                  "incremental"};
  /// Summed reused frame depth.
  obs::Counter IncPrefixDepth{*this, "inc_prefix_depth", "incremental"};
  /// GIL→Z3 memo subterm hits.
  obs::Counter EncodeMemoHits{*this, "encode_memo_hits", "incremental"};
  obs::Counter EncodeMemoMisses{*this, "encode_memo_misses", "incremental"};

  // Native theory layer (boolean/equality/disequality skeleton; between
  // the syntactic core and the Z3 backends — DESIGN.md §4f).
  /// Queries reaching the native layer.
  obs::Counter NativeQueries{*this, "native_queries", "solver"};
  /// Decided Sat (verified model).
  obs::Counter NativeSat{*this, "native_sat", "solver"};
  /// Decided Unsat (native proof).
  obs::Counter NativeUnsat{*this, "native_unsat", "solver"};
  /// Unknown → delegated to Z3.
  obs::Counter NativeFallbacks{*this, "native_fallbacks", "solver"};
  /// Frames reused across queries.
  obs::Counter NativeFramesReused{*this, "native_frames_reused", "solver"};
  /// Conjuncts not re-asserted.
  obs::Counter NativeConjunctsReused{*this, "native_conjuncts_reused",
                                     "solver"};

  // Async batched query service (SolverOptions::AsyncSolvers > 0).
  obs::Counter AsyncSubmitted{*this, "async_submitted", "solver"};
  /// Shared an in-flight identical query's future.
  obs::Counter AsyncDedupHits{*this, "async_dedup_hits", "solver"};
  /// Resolved by a completed query that subsumes this one.
  obs::Counter AsyncSubsumedHits{*this, "async_subsumed_hits", "solver"};
  /// Ran inline (queue full or called from a service worker).
  obs::Counter AsyncInlineRuns{*this, "async_inline_runs", "solver"};
  /// Batches drained by service workers.
  obs::Counter AsyncBatches{*this, "async_batches", "solver"};
  /// Submission-queue depth at last submit.
  obs::Gauge AsyncQueueDepth{*this, "async_queue_depth", "solver"};

  obs::Counter Sat{*this, "sat", "verdict"};
  obs::Counter Unsat{*this, "unsat", "verdict"};
  obs::Counter Unknown{*this, "unknown", "verdict"};
  obs::Counter ModelsProposed{*this, "models_proposed", "verdict"};
  obs::Counter ModelsVerified{*this, "models_verified", "verdict"};

  // Per-layer wall-time (ns), cumulative across threads; fed by the obs
  // span slots so the per-solver numbers and the global span table agree.
  obs::Counter SliceNs{*this, "slice_ns", "time"};     ///< slicing split
  obs::Counter CanonNs{*this, "canon_ns", "time"};     ///< slice keys
  obs::Counter SyntacticNs{*this, "syntactic_ns", "time"};
  obs::Counter NativeNs{*this, "native_ns", "time"};   ///< native layer
  obs::Counter AsyncWaitNs{*this, "async_wait_ns", "time"}; ///< future waits
  obs::Counter Z3Ns{*this, "z3_ns", "time"};           ///< SMT round-trips
  obs::Counter TotalNs{*this, "total_ns", "time"};     ///< inside checkSat

  SolverStats() = default;
  SolverStats(const SolverStats &O) { copyFrom(O); }
  SolverStats &operator=(const SolverStats &O) {
    copyFrom(O);
    return *this;
  }

  /// Fraction of cache lookups (full-query and slice) answered from the
  /// cache; 0 when no lookup happened.
  double cacheHitRate() const {
    uint64_t Lookups = CacheLookups + SliceCacheLookups;
    return Lookups ? static_cast<double>(CacheHits + SliceCacheHits) /
                         static_cast<double>(Lookups)
                   : 0.0;
  }

  /// Fraction of incremental-session queries answered on a reused prefix;
  /// 0 when no session query happened.
  double sessionHitRate() const {
    uint64_t Q = IncQueries;
    return Q ? static_cast<double>(IncExtends) / static_cast<double>(Q) : 0.0;
  }

  /// Mean reused frame depth per prefix-extending query (the prefix-reuse
  /// depth reported by the benches); 0 when nothing was ever reused.
  double meanPrefixDepth() const {
    uint64_t E = IncExtends;
    return E ? static_cast<double>(IncPrefixDepth) / static_cast<double>(E)
             : 0.0;
  }

  SolverStats &operator+=(const SolverStats &O) {
    addFrom(O);
    return *this;
  }
  /// Explicit name for summing per-worker snapshots into an aggregate.
  void merge(const SolverStats &O) { *this += O; }
  /// Counter-wise delta (for before/after snapshots around one test).
  SolverStats operator-(const SolverStats &O) const { return deltaSince(O); }
};

/// Renders \p S as a JSON object (single line, no trailing newline) for
/// the bench harness output; includes the derived cache_hit_rate.
std::string solverStatsJson(const SolverStats &S);

/// Registers a process-wide hook run by every Solver::resetCache() call.
/// Upper-layer memoisation stores (the engine's procedure summary store)
/// hook their clear() in so a "cold" reset colds every layer of the
/// stack, not just the solver's own caches. Hooks must be callable from
/// any thread and never unregister.
void registerCacheResetHook(void (*Hook)());

/// A stateful (caching) satisfiability oracle for path conditions.
/// Thread-safe; see the file comment.
class Solver {
public:
  /// A solver with its own private result cache (isolated, as every
  /// pre-existing unit test expects).
  explicit Solver(SolverOptions Opts = SolverOptions())
      : Opts(Opts), OwnedCache(std::make_unique<SolverCache>()),
        Cache(OwnedCache.get()) {}

  /// A solver answering from (and feeding) \p Shared — typically
  /// SolverCache::process(), so suite re-runs start warm.
  Solver(SolverOptions Opts, SolverCache &Shared)
      : Opts(Opts), Cache(&Shared) {}

  /// Is \p PC satisfiable? Unknown means "could not decide" and is treated
  /// as possibly-Sat by the engine. Unknown verdicts are never cached.
  SatResult checkSat(const PathCondition &PC);

  /// True unless \p PC is *provably* unsatisfiable — the engine's branch
  /// feasibility test.
  bool maybeSat(const PathCondition &PC) {
    return checkSat(PC) != SatResult::Unsat;
  }

  /// Produces a model of \p PC that has been *verified* by evaluating every
  /// conjunct to true, or nullopt. Verified models are the counter-models
  /// reported to users and the ε environments used by the §3 replay tests.
  std::optional<Model> verifiedModel(const PathCondition &PC);

  const SolverStats &stats() const { return Stats; }
  void resetStats() { Stats = SolverStats(); }
  const SolverOptions &options() const { return Opts; }

  /// Clears every memoised solver layer: the attached result cache
  /// (shared or private), the process-wide sharded simplifier memo, and
  /// the incremental sessions + encoding memos of every thread — so tests
  /// and bench configurations that reset between timed runs measure a
  /// genuinely cold solver.
  void resetCache();
  SolverCache &cache() { return *Cache; }

  /// Persists the attached result cache to \p Path (one `SAT`/`UNSAT` +
  /// tab + canonical-condition line per entry; Unknown is never cached so
  /// never persisted). Returns the number of entries written, or -1 on
  /// I/O failure.
  long saveCache(const std::string &Path) const;
  /// Seeds the attached result cache from a file written by saveCache().
  /// Entries are re-parsed and re-canonicalised, so a warm start stays
  /// valid across simplifier changes (unparseable lines are skipped).
  /// Returns the number of entries loaded, or -1 if \p Path can't be read.
  long loadCache(const std::string &Path);

private:
  /// checkSat minus the per-query accounting wrapper (hot-query profiler,
  /// progress counter). \p CacheHit reports a full-query cache hit.
  SatResult checkSatImpl(const PathCondition &PC, bool &CacheHit);
  /// verifiedModel minus the same accounting wrapper.
  std::optional<Model> verifiedModelImpl(const PathCondition &PC);
  /// The syntactic-core + Z3 pipeline on one (sub-)condition; no caching.
  SatResult solveLayers(const PathCondition &PC);
  /// One slice: per-slice cache, then solveLayers; caches Sat/Unsat.
  SatResult solveSlice(const PathCondition &Slice);
  /// Partition into variable-disjoint slices and combine slice verdicts.
  SatResult checkSatSliced(const PathCondition &PC);

  SolverOptions Opts;
  SolverStats Stats;
  /// Backing storage when this solver owns its cache (default ctor).
  std::unique_ptr<SolverCache> OwnedCache;
  /// The canonical-key result cache shared by full queries and slices
  /// (slices are path conditions themselves). Never stores Unknown.
  SolverCache *Cache;
};

} // namespace gillian

#endif // GILLIAN_SOLVER_SOLVER_H
