//===- bench/bench_table2_collections.cpp ---------------------------------===//
//
// Regenerates Table 2 of the paper (§4.2): symbolic testing of the
// Collections-C-style library with Gillian-C (our MC instantiation).
//
// Columns, as in the paper: per data structure, the number of symbolic
// tests (#T), the number of executed GIL commands, and the time. The
// binary then runs the buggy library variant and prints the re-detected
// §4.2 findings, mirroring the finding list of the paper.
//
// After the table, one JSON line reports per-suite and total solver-layer
// statistics — including the canonical slicing cache's hit rate — so A/B
// runs can track cache effectiveness.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "mc/compiler.h"
#include "mc/memory.h"
#include "obs/coverage.h"
#include "obs/json_writer.h"
#include "targets/collections_mc.h"
#include "targets/suite_runner.h"

#include <chrono>
#include <cstdio>
#include <set>

using namespace gillian;
using namespace gillian::mc;
using namespace gillian::targets;

namespace {

using bench::coldStart;
using bench::seconds;

Result<Prog> compileSuite(std::string_view Library,
                          const CollectionsSuite &S) {
  std::string Src = std::string(Library) + "\n" + std::string(S.Source);
  return compileMcSource(Src);
}

} // namespace

int main(int argc, char **argv) {
  const bench::BenchArgs Args = bench::parseBenchArgs(argc, argv);
  bench::setupObs(Args);
  // Worker count of the parallel configuration (--workers; default 4, the
  // acceptance target's core count).
  const uint32_t ParWorkers = Args.Workers;
  // Path-selection strategy of the parallel configuration (--strategy).
  const SelectionStrategy ParStrategy = Args.Strategy;
  std::printf("Table 2: Collections-C-style symbolic test suites "
              "(Gillian-C / MC)\n");
  std::printf("%-8s %4s %12s %10s %10s %8s %9s\n", "Name", "#T", "GIL Cmds",
              "Time", "Time(P4)", "ParSpd", "HitRate");

  uint64_t TotalTests = 0, TotalCmds = 0, HealthyBugs = 0;
  double TotalTime = 0, TotalTimePar = 0;
  SolverStats TotalSolver;
  std::string SuitesJson;
  for (const CollectionsSuite &S : collectionsSuites()) {
    Result<Prog> P = compileSuite(collectionsLibrary(), S);
    if (!P) {
      std::fprintf(stderr, "compile error in %s: %s\n",
                   std::string(S.Name).c_str(), P.error().c_str());
      return 1;
    }
    coldStart();
    EngineOptions Opts;
    Opts.UseSummaries = Args.Summaries;
    auto T0 = std::chrono::steady_clock::now();
    SuiteResult R = runSuite<McSMem>(S.Name, *P, Opts);
    double Sec = seconds(T0);

    // Same suite on the 4-worker scheduler, from a cold cache again.
    coldStart();
    EngineOptions ParOpts;
    ParOpts.UseSummaries = Args.Summaries;
    ParOpts.Scheduler.Workers = ParWorkers;
    ParOpts.Scheduler.Strategy = ParStrategy;
    ParOpts.Solver.UseNative = Args.Native;
    ParOpts.Solver.AsyncSolvers = Args.Async;
    T0 = std::chrono::steady_clock::now();
    SuiteResult RPar = runSuite<McSMem>(S.Name, *P, ParOpts);
    double SecPar = seconds(T0);

    std::printf("%-8s %4llu %12llu %9.3fs %9.3fs %7.2fx %8.1f%%\n",
                std::string(S.Name).c_str(),
                static_cast<unsigned long long>(R.Tests),
                static_cast<unsigned long long>(R.GilCmds), Sec, SecPar,
                SecPar > 0 ? Sec / SecPar : 0.0,
                100.0 * R.Solver.cacheHitRate());
    obs::JsonWriter Row;
    Row.beginObject();
    Row.field("name", std::string_view(S.Name));
    Row.field("tests", R.Tests);
    Row.field("gil_cmds", R.GilCmds);
    Row.field("time_s", Sec, 6);
    Row.field("time_par_s", SecPar, 6);
    Row.field("par_workers", ParWorkers);
    Row.field("par_strategy", strategyName(ParStrategy));
    Row.key("solver");
    Row.raw(solverStatsJson(R.Solver));
    Row.endObject();
    if (!SuitesJson.empty())
      SuitesJson += ",";
    SuitesJson += Row.take();
    TotalTests += R.Tests;
    TotalCmds += R.GilCmds;
    TotalTime += Sec;
    TotalTimePar += SecPar;
    TotalSolver += R.Solver;
    HealthyBugs += R.Bugs.size() + RPar.Bugs.size();
  }
  std::printf("%-8s %4llu %12llu %9.3fs %9.3fs %7.2fx %8.1f%%\n", "Total",
              static_cast<unsigned long long>(TotalTests),
              static_cast<unsigned long long>(TotalCmds), TotalTime,
              TotalTimePar,
              TotalTimePar > 0 ? TotalTime / TotalTimePar : 0.0,
              100.0 * TotalSolver.cacheHitRate());

  // The §4.2 finding list, re-detected on the seeded library.
  std::printf("\nFindings on the seeded library (mirrors the §4.2 list):\n");
  std::set<std::string> Findings;
  for (const CollectionsSuite &S : collectionsSuites()) {
    Result<Prog> P = compileSuite(collectionsBuggyLibrary(), S);
    if (!P)
      continue;
    EngineOptions Opts;
    SuiteResult R = runSuite<McSMem>(S.Name, *P, Opts);
    for (const BugReport &B : R.Bugs) {
      std::string Kind;
      if (B.Message.find("out-of-bounds") != std::string::npos)
        Kind = "1. buffer overflow in the dynamic array (off-by-one)";
      else if (B.Message.find("different objects") != std::string::npos)
        Kind = "2. undefined behaviour: pointer comparison across objects";
      else if (B.Message.find("freed pointer") != std::string::npos)
        Kind = "3. comparison of freed pointers";
      else if (B.Message.find("assertion failure") != std::string::npos &&
               B.Message.find("allocation") != std::string::npos)
        Kind = "4. over-allocation in the ring buffer (capacity audit)";
      else
        Kind = "other: " + B.Message.substr(0, 60);
      Findings.insert(Kind + (B.Confirmed ? "  [counter-model verified]"
                                          : "  [unconfirmed]"));
    }
  }
  for (const std::string &F : Findings)
    std::printf("  %s\n", F.c_str());

  std::printf("\nHealthy-library bug reports: %llu (expected 0)\n",
              static_cast<unsigned long long>(HealthyBugs));
  std::printf("Paper shape check: all four seeded finding classes "
              "re-detected; clean library verifies.\n");
  if (Args.Json) {
    obs::JsonWriter W;
    W.beginObject();
    W.field("bench", "table2_collections");
    W.field("strategy", strategyName(ParStrategy));
    W.field("summaries", Args.Summaries);
    W.key("suites");
    W.beginArray();
    W.raw(SuitesJson);
    W.endArray();
    W.key("total");
    W.beginObject();
    W.field("tests", TotalTests);
    W.field("gil_cmds", TotalCmds);
    W.field("time_s", TotalTime, 6);
    W.field("time_par_s", TotalTimePar, 6);
    W.field("par_workers", ParWorkers);
    W.field("par_strategy", strategyName(ParStrategy));
    W.key("solver");
    W.raw(solverStatsJson(TotalSolver));
    W.endObject();
    W.key("coverage");
    W.raw(obs::BranchCoverage::instance().json());
    W.key("obs");
    W.raw(obs::obsStatsJson(obs::SpanTable::global().snapshot()));
    W.endObject();
    std::printf("\n%s\n", W.take().c_str());
  }
  bench::finishObs(Args);
  return HealthyBugs == 0 && Findings.size() >= 4 ? 0 : 1;
}
