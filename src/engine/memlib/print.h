//===- engine/memlib/print.h - Generic memory printers ---------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two printing shapes every memory model in this repo uses, written
/// once. The formats are load-bearing: summary-store keys embed memory
/// toString() output and must round-trip through the `<cache-file>.summaries`
/// parser, so the model printers that now delegate here must keep their
/// exact historical output.
///
///   printEntries:  "{" (" " <entry>)* " }"     — a memory as a set of
///                                                location entries
///   printObject:   "{" (" " <k> ": " <v> ";")* " }"
///                                              — one object's properties
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_MEMLIB_PRINT_H
#define GILLIAN_ENGINE_MEMLIB_PRINT_H

#include <string>

namespace gillian::memlib {

/// Renders a map-shaped memory: `{ e1 e2 ... }` where each ei is produced
/// by \p Fn(key, value). Empty map renders as `{ }`.
template <typename MapT, typename EntryFn>
std::string printEntries(const MapT &Map, EntryFn Fn) {
  std::string S = "{";
  for (const auto &[K, V] : Map)
    S += " " + Fn(K, V);
  S += " }";
  return S;
}

/// Renders one object's property table: `{ k: v; k: v; }` with each
/// key/value rendered by \p KeyFn / \p ValFn. Empty table renders as `{ }`.
template <typename MapT, typename KeyFn, typename ValFn>
std::string printObject(const MapT &Props, KeyFn KF, ValFn VF) {
  std::string S = "{";
  for (const auto &[K, V] : Props)
    S += " " + KF(K) + ": " + VF(V) + ";";
  S += " }";
  return S;
}

} // namespace gillian::memlib

#endif // GILLIAN_ENGINE_MEMLIB_PRINT_H
