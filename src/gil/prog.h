//===- gil/prog.h - GIL commands, procedures, programs (§2.1) --*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GIL command language:
///
///   c ∈ C_A ≜ x := e | ifgoto e i | x := e(e') | return e | fail e |
///             vanish | x := α(e) | x := uSym_j | x := iSym_j
///
/// Programs are finite maps from procedure identifiers to procedures
/// f(x){c̄}; procedures have a single formal parameter (compilers pass GIL
/// lists for multi-argument calls).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_GIL_PROG_H
#define GILLIAN_GIL_PROG_H

#include "gil/expr.h"
#include "support/interner.h"

#include <map>
#include <string>
#include <vector>

namespace gillian {

enum class CmdKind : uint8_t {
  Assign, ///< x := e
  IfGoto, ///< ifgoto e i
  Call,   ///< x := e(e')
  Return, ///< return e
  Fail,   ///< fail e
  Vanish, ///< vanish
  Action, ///< x := α(e)
  USym,   ///< x := uSym_j
  ISym,   ///< x := iSym_j
};

/// One GIL command. A plain aggregate: which fields are meaningful depends
/// on Kind (see the factory functions).
struct Cmd {
  CmdKind Kind = CmdKind::Vanish;
  InternedString X;      ///< assignment target (Assign/Call/Action/USym/ISym)
  Expr E;                ///< main expression (Assign/IfGoto/Return/Fail;
                         ///< callee for Call; argument for Action)
  Expr Arg;              ///< call argument e' (Call only)
  size_t Target = 0;     ///< jump target i (IfGoto only)
  InternedString Action; ///< action name α (Action only)
  uint32_t Site = 0;     ///< allocation site j (USym/ISym only)

  static Cmd assign(InternedString X, Expr E);
  static Cmd ifGoto(Expr E, size_t Target);
  static Cmd call(InternedString X, Expr Callee, Expr Arg);
  static Cmd ret(Expr E);
  static Cmd fail(Expr E);
  static Cmd vanish();
  static Cmd action(InternedString X, InternedString Action, Expr Arg);
  static Cmd uSym(InternedString X, uint32_t Site);
  static Cmd iSym(InternedString X, uint32_t Site);

  /// Renders in textual-GIL syntax (one line, no trailing ';').
  std::string toString() const;
};

/// A GIL procedure f(x){c̄}.
struct Proc {
  InternedString Name;
  InternedString Param;
  std::vector<Cmd> Body;
};

/// A GIL program: a map from procedure identifiers to procedures.
class Prog {
public:
  /// Adds \p P, replacing any same-named procedure.
  void add(Proc P) { Procs[P.Name] = std::move(P); }

  /// Returns the procedure named \p F, or null.
  const Proc *find(InternedString F) const {
    auto It = Procs.find(F);
    return It == Procs.end() ? nullptr : &It->second;
  }
  const Proc *find(std::string_view F) const {
    return find(InternedString::get(F));
  }

  const std::map<InternedString, Proc> &procs() const { return Procs; }
  size_t size() const { return Procs.size(); }

  /// Renders the whole program in textual-GIL syntax (round-trips through
  /// parseGilProg).
  std::string toString() const;

private:
  std::map<InternedString, Proc> Procs;
};

} // namespace gillian

#endif // GILLIAN_GIL_PROG_H
